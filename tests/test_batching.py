"""Tests for the cross-protocol wire-batching layer (:mod:`repro.sim.batching`).

Covers the batchable-type registry, the (src, dst, flush tick) coalescing
semantics at the network layer, fault interaction, end-to-end deployment
equivalence (batching must not change *what* gets delivered, only how many
wire messages carry it), same-seed determinism pinned by a batched golden
trace, and the headline acceptance criterion: ≥ 30 % fewer wire messages on
the canonical 8-node / 2,000 req/s / 10 s profiling scenario.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.consensus.bc import BcCommit, BcPrepare, BcPropose
from repro.consensus.brb import BrbEcho, BrbReady, BrbSend
from repro.core.checkpoint import CheckpointMsg
from repro.core.config import ConfigError, ISSConfig, NetworkConfig, WorkloadConfig
from repro.core.messages import (
    BucketAssignmentMsg,
    ClientRequestMsg,
    ClientResponseBatchMsg,
    InstanceMessage,
)
from repro.harness.runner import Deployment
from repro.hotstuff.messages import NewRound, Vote
from repro.pbft.messages import Commit, Prepare, PrePrepare
from repro.raft.messages import AppendEntries, AppendReply, RequestVote, VoteReply
from repro.sim.batching import (
    BATCH_HEADER_BYTES,
    MessageBatcher,
    MessageBatchMsg,
    is_batchable,
    register_batchable,
)
from repro.sim.latency import LatencyModel
from repro.sim.network import Network, wire_size
from repro.sim.simulator import Simulator
from tests.conftest import make_batch, make_request

GOLDEN_BATCHED_PATH = Path(__file__).parent / "data" / "golden_trace_batched.json"

DIGEST = b"d" * 32


def vote(sn: int = 0) -> Prepare:
    return Prepare(view=0, sn=sn, digest=DIGEST)


def make_network(flush_interval: float = 0.01, num_nodes: int = 4, **overrides):
    """Network with deterministic latency and optional wire batching."""
    sim = Simulator(seed=1)
    config = NetworkConfig(
        jitter=0.0,
        inter_dc_latency=0.02,
        intra_dc_latency=0.001,
        batch_flush_interval=flush_interval,
        **overrides,
    )
    network = Network(sim, config, LatencyModel(config, num_nodes))
    inboxes = {n: [] for n in range(num_nodes)}
    for node in range(num_nodes):
        network.register(node, lambda src, msg, n=node: inboxes[n].append((src, msg)))
    return sim, network, inboxes


class TestRegistry:
    def test_votes_are_batchable(self):
        assert is_batchable(vote())
        assert is_batchable(Commit(view=0, sn=1, digest=DIGEST))
        assert is_batchable(AppendReply(term=1, success=True, match_index=3))
        assert is_batchable(VoteReply(term=1, granted=True))
        assert is_batchable(BcPrepare(instance=1, view=0, value_key=b"k"))
        assert is_batchable(BcCommit(instance=1, view=0, value_key=b"k"))
        assert is_batchable(BrbEcho(instance=1, payload=b"p"))
        assert is_batchable(BrbReady(instance=1, payload=b"p"))
        assert is_batchable(
            CheckpointMsg(epoch=0, last_sn=7, log_root=DIGEST, sender=1, signature=b"s")
        )

    def test_raft_heartbeats_batchable_but_replication_is_not(self):
        from repro.core.types import NIL
        from repro.raft.messages import RaftEntry

        heartbeat = AppendEntries(
            term=1, prev_index=0, prev_term=0, entries=(), leader_commit=0
        )
        replicating = AppendEntries(
            term=1,
            prev_index=0,
            prev_term=0,
            entries=(RaftEntry(term=1, sn=0, value=NIL),),
            leader_commit=0,
        )
        assert is_batchable(heartbeat)
        assert not is_batchable(replicating)

    def test_client_messages_are_batchable(self):
        assert is_batchable(ClientRequestMsg(request=make_request()))
        assert is_batchable(
            ClientResponseBatchMsg(client=0, entries=(), node=1)
        )

    def test_payload_carrying_messages_are_not_batchable(self):
        batch = make_batch(make_request())
        assert not is_batchable(
            PrePrepare(view=0, sn=0, value=batch, digest=batch.digest())
        )
        assert not is_batchable(RequestVote(term=1, last_log_index=0, last_log_term=0))
        assert not is_batchable(BucketAssignmentMsg(epoch=0, assignment=()))
        assert not is_batchable(BrbSend(instance=1, payload=b"p"))
        assert not is_batchable(BcPropose(instance=1, view=0, value=b"v"))

    def test_instance_envelope_is_transparent(self):
        batchable = InstanceMessage(instance_id=(0, 1), payload=vote())
        batch = make_batch(make_request())
        unbatchable = InstanceMessage(
            instance_id=(0, 1),
            payload=PrePrepare(view=0, sn=0, value=batch, digest=batch.digest()),
        )
        assert is_batchable(batchable)
        assert not is_batchable(unbatchable)

    def test_hotstuff_votes_batchable_without_crypto(self):
        # Vote/NewRound carry threshold-crypto members; registry membership
        # is a type-level property, so probe the registry directly.
        from repro.sim.batching import _REGISTRY

        assert Vote in _REGISTRY
        assert NewRound in _REGISTRY

    def test_wire_frames_are_never_rebatched(self):
        assert not is_batchable(MessageBatchMsg(payloads=(vote(),), size=96))

    def test_register_batchable_returns_class(self):
        class Probe:
            pass

        assert register_batchable(Probe) is Probe
        assert is_batchable(Probe())


class TestNetworkCoalescing:
    def test_same_tick_same_link_messages_share_one_frame(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        votes = [vote(sn) for sn in range(3)]
        for v in votes:
            network.send(0, 1, v)
        sim.run()
        stats = network.stats
        assert stats.messages_sent == 1
        assert stats.batches_sent == 1
        assert stats.payloads_batched == 3
        # The receiver sees each vote individually, in send order.
        assert [msg for _, msg in inboxes[1]] == votes
        assert all(src == 0 for src, _ in inboxes[1])
        assert stats.messages_delivered == 3

    def test_frame_wire_size_is_header_plus_payload_sizes(self):
        sim, network, _ = make_network(flush_interval=0.01)
        votes = [vote(sn) for sn in range(3)]
        for v in votes:
            network.send(0, 1, v)
        sim.run()
        expected = BATCH_HEADER_BYTES + sum(wire_size(v) for v in votes)
        assert network.stats.bytes_sent == expected

    def test_lone_message_flushes_unwrapped(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        the_vote = vote()
        network.send(0, 1, the_vote)
        sim.run()
        assert network.stats.messages_sent == 1
        assert network.stats.batches_sent == 0
        assert inboxes[1] == [(0, the_vote)]

    def test_different_links_use_different_frames(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        network.send(0, 1, vote(0))
        network.send(0, 2, vote(1))
        network.send(3, 1, vote(2))
        sim.run()
        assert network.stats.messages_sent == 3
        assert len(inboxes[1]) == 2 and len(inboxes[2]) == 1

    def test_enqueue_on_inexact_float_boundary_waits_a_full_tick(self):
        # 0.06 // 0.02 == 2.0 in floats, so a naive "next boundary"
        # computation lands on `now` itself; messages enqueued at such a
        # boundary must still wait one full interval and coalesce with
        # later traffic from the same window.
        sim, network, _ = make_network(flush_interval=0.02)
        sim.schedule(0.06, lambda: network.send(0, 1, vote(0)))
        sim.schedule(0.075, lambda: network.send(0, 1, vote(1)))
        sim.run()
        assert network.stats.batches_sent == 1
        assert network.stats.payloads_batched == 2

    def test_link_filters_apply_to_batchable_payloads(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        network.add_link_filter(
            lambda src, dst, msg: not isinstance(msg, Prepare)
        )
        network.send(0, 1, vote(0))  # vetoed at enqueue time
        network.send(0, 1, Commit(view=0, sn=0, digest=DIGEST))
        sim.run()
        assert network.stats.messages_dropped == 1
        assert [type(m) for _, m in inboxes[1]] == [Commit]

    def test_tick_boundary_separates_frames(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        network.send(0, 1, vote(0))
        # Second message lands in the next 10 ms window.
        sim.schedule(0.015, lambda: network.send(0, 1, vote(1)))
        sim.run()
        assert network.stats.messages_sent == 2
        assert network.stats.batches_sent == 0
        assert len(inboxes[1]) == 2

    def test_unbatchable_messages_bypass_the_batcher(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        batch = make_batch(make_request())
        preprepare = PrePrepare(view=0, sn=0, value=batch, digest=batch.digest())
        network.send(0, 1, preprepare)
        assert network.batcher.pending_payloads() == 0
        sim.run()
        assert inboxes[1] == [(0, preprepare)]

    def test_self_sends_bypass_the_batcher(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        network.send(0, 0, vote())
        assert network.batcher.pending_payloads() == 0
        sim.run()
        assert len(inboxes[0]) == 1

    def test_crashed_destination_drops_the_whole_frame(self):
        sim, network, inboxes = make_network(flush_interval=0.01)
        network.send(0, 1, vote(0))
        network.send(0, 1, vote(1))
        network.crash(1)
        sim.run()
        assert inboxes[1] == []
        assert network.stats.messages_dropped == 1  # one wire frame

    def test_flush_all_drains_pending_buffers(self):
        sim, network, _ = make_network(flush_interval=5.0)
        network.send(0, 1, vote(0))
        network.send(0, 1, vote(1))
        assert network.batcher.pending_payloads() == 2
        network.batcher.flush_all()
        assert network.batcher.pending_payloads() == 0
        assert network.stats.messages_sent == 1

    def test_batching_disabled_by_default(self):
        sim, network, _ = make_network(flush_interval=0.0)
        assert network.batcher is None
        network.send(0, 1, vote())
        assert network.stats.messages_sent == 1

    def test_negative_flush_interval_rejected(self):
        with pytest.raises(ConfigError):
            NetworkConfig(batch_flush_interval=-0.01).validate()
        with pytest.raises(ValueError):
            MessageBatcher(Simulator(), 0.0, lambda *a: None, wire_size)

    def test_batcher_stats_roundtrip(self):
        sim, network, _ = make_network(flush_interval=0.01)
        for sn in range(3):
            network.send(0, 1, vote(sn))
        network.send(2, 3, vote(9))
        sim.run()
        stats = network.batcher.stats
        assert stats.payloads_enqueued == 4
        assert stats.batches_flushed == 1
        assert stats.singletons_flushed == 1
        assert stats.as_dict()["payloads_enqueued"] == 4


def _run_deployment(flush_interval: float, **workload_overrides):
    config = ISSConfig(num_nodes=4, random_seed=97)
    workload = WorkloadConfig(
        num_clients=8, total_rate=300.0, duration=2.0, **workload_overrides
    )
    deployment = Deployment(
        config=config,
        workload=workload,
        network_config=NetworkConfig(batch_flush_interval=flush_interval),
    )
    result = deployment.run()
    return deployment, result


class TestDeploymentEquivalence:
    def test_batching_preserves_what_gets_delivered(self):
        dep_plain, res_plain = _run_deployment(0.0)
        dep_batched, res_batched = _run_deployment(0.02)
        # Same requests submitted and completed; only the wire changed.
        assert res_batched.report.submitted == res_plain.report.submitted
        assert res_batched.report.completed == res_plain.report.completed
        assert [n.delivered_count() for n in dep_batched.nodes] == [
            n.delivered_count() for n in dep_plain.nodes
        ]
        stats = dep_batched.network.stats
        assert stats.batches_sent > 0
        assert stats.messages_sent < dep_plain.network.stats.messages_sent

    def test_same_seed_batched_runs_are_identical(self):
        dep_a, res_a = _run_deployment(0.02)
        dep_b, res_b = _run_deployment(0.02)
        assert res_a.report.completed == res_b.report.completed
        assert res_a.report.latency == res_b.report.latency
        assert dep_a.sim.events_executed == dep_b.sim.events_executed
        assert dep_a.network.stats.messages_sent == dep_b.network.stats.messages_sent
        assert dep_a.network.stats.bytes_sent == dep_b.network.stats.bytes_sent
        assert (
            dep_a.network.stats.payloads_batched == dep_b.network.stats.payloads_batched
        )


class TestBatchedGoldenTrace:
    """Same-seed delivery schedules of a batched run are pinned bit for bit.

    The scenario mirrors the unbatched golden trace (client responses off so
    the trace pins the sim/network/batching layers) with a 20 ms flush tick.
    """

    def test_delivery_order_matches_batched_golden_trace(self):
        golden = json.loads(GOLDEN_BATCHED_PATH.read_text())
        scenario = golden["scenario"]
        config = ISSConfig(
            num_nodes=scenario["num_nodes"],
            random_seed=scenario["random_seed"],
            send_client_responses=scenario["send_client_responses"],
        )
        workload = WorkloadConfig(
            num_clients=scenario["num_clients"],
            total_rate=scenario["total_rate"],
            duration=scenario["duration"],
            random_seed=scenario["workload_seed"],
        )
        deployment = Deployment(
            config=config,
            workload=workload,
            network_config=NetworkConfig(
                batch_flush_interval=scenario["batch_flush_interval"]
            ),
        )

        trace = []

        def record(node_id, item):
            trace.append(
                (
                    node_id,
                    item.sn,
                    item.batch_sn,
                    item.request.rid.client,
                    item.request.rid.timestamp,
                    round(item.delivered_at, 9),
                )
            )

        for node in deployment.nodes:
            node.on_deliver = record
        for node in deployment.nodes:
            node.start()
        deployment.generator.start()
        deployment.sim.run(until=workload.duration + deployment.drain_time)

        assert len(trace) == golden["trace_len"]
        assert trace[:5] == [tuple(entry) for entry in golden["first_entries"]]
        digest = hashlib.sha256(repr(trace).encode()).hexdigest()
        assert digest == golden["trace_sha256"]
        assert deployment.sim.events_executed == golden["events_executed"]
        assert deployment.network.stats.messages_sent == golden["messages_sent"]
        assert deployment.network.stats.batches_sent == golden["batches_sent"]
        assert deployment.network.stats.payloads_batched == golden["payloads_batched"]


class TestProfilingScenarioReduction:
    """The PR's acceptance criterion, asserted on the real scenario."""

    def test_batched_scenario_cuts_messages_by_thirty_percent(self):
        from repro.perf_smoke import BATCH_FLUSH_INTERVAL, build_deployment

        plain = build_deployment()
        plain.run()
        batched = build_deployment(BATCH_FLUSH_INTERVAL)
        batched_result = batched.run()

        sent_plain = plain.network.stats.messages_sent
        sent_batched = batched.network.stats.messages_sent
        reduction = 1.0 - sent_batched / sent_plain
        assert reduction >= 0.30, (
            f"batched run sent {sent_batched} wire messages vs {sent_plain} "
            f"unbatched — only {reduction:.1%} reduction"
        )
        # Delivery semantics unchanged: the same number of requests complete.
        assert batched_result.report.completed > 0
        assert (
            batched.network.stats.messages_delivered
            >= batched.network.stats.messages_sent
        )
