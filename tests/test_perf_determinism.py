"""Determinism regression tests guarding the hot-path optimizations.

The performance overhaul (allocation-free event dispatch, cached identities,
memoized signature verification, aggregated client responses) must not change
*what* the simulator computes: the same seed must keep producing the same
schedule, counters and reports, and the optimized fast paths must reproduce
the delivery order recorded on the pre-optimization golden trace.
"""

import hashlib
import json
from pathlib import Path

from repro.core.config import ISSConfig, WorkloadConfig
from repro.harness.runner import Deployment

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"


def _run_deployment(config: ISSConfig, workload: WorkloadConfig):
    deployment = Deployment(config=config, workload=workload)
    result = deployment.run()
    return deployment, result


class TestSameSeedDeterminism:
    def _run_once(self):
        config = ISSConfig(num_nodes=4, random_seed=97)
        workload = WorkloadConfig(num_clients=8, total_rate=300.0, duration=2.0)
        return _run_deployment(config, workload)

    def test_same_seed_runs_are_identical(self):
        dep_a, res_a = self._run_once()
        dep_b, res_b = self._run_once()

        assert res_a.report.submitted == res_b.report.submitted
        assert res_a.report.completed == res_b.report.completed
        assert res_a.report.throughput == res_b.report.throughput
        assert res_a.report.latency == res_b.report.latency
        assert res_a.report.extra == res_b.report.extra
        assert dep_a.sim.events_executed == dep_b.sim.events_executed
        assert dep_a.network.stats.messages_sent == dep_b.network.stats.messages_sent
        assert dep_a.network.stats.bytes_sent == dep_b.network.stats.bytes_sent
        assert (
            dep_a.network.stats.per_node_messages_sent
            == dep_b.network.stats.per_node_messages_sent
        )

    def test_different_network_seed_changes_schedule(self):
        from repro.core.config import NetworkConfig

        _, res_a = self._run_once()
        config = ISSConfig(num_nodes=4, random_seed=97)
        workload = WorkloadConfig(num_clients=8, total_rate=300.0, duration=2.0)
        deployment = Deployment(
            config=config,
            workload=workload,
            network_config=NetworkConfig(random_seed=1234),
        )
        res_b = deployment.run()
        # Same workload, different network jitter seed: latencies must differ.
        assert res_a.report.latency != res_b.report.latency


class TestGoldenTrace:
    """The optimized fast paths must match the recorded pre-optimization
    delivery schedule bit for bit (the trace was recorded with client
    responses disabled, so it pins the sim/network/types/crypto layers)."""

    def test_delivery_order_matches_golden_trace(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        scenario = golden["scenario"]
        config = ISSConfig(
            num_nodes=scenario["num_nodes"],
            random_seed=scenario["random_seed"],
            send_client_responses=scenario["send_client_responses"],
        )
        workload = WorkloadConfig(
            num_clients=scenario["num_clients"],
            total_rate=scenario["total_rate"],
            duration=scenario["duration"],
            random_seed=scenario["workload_seed"],
        )
        deployment = Deployment(config=config, workload=workload)

        trace = []

        def record(node_id, item):
            trace.append(
                (
                    node_id,
                    item.sn,
                    item.batch_sn,
                    item.request.rid.client,
                    item.request.rid.timestamp,
                    round(item.delivered_at, 9),
                )
            )

        for node in deployment.nodes:
            node.on_deliver = record
        for node in deployment.nodes:
            node.start()
        deployment.generator.start()
        deployment.sim.run(until=workload.duration + deployment.drain_time)

        assert len(trace) == golden["trace_len"]
        assert trace[:5] == [tuple(entry) for entry in golden["first_entries"]]
        digest = hashlib.sha256(repr(trace).encode()).hexdigest()
        assert digest == golden["trace_sha256"]
        assert deployment.sim.events_executed == golden["events_executed"]
        assert deployment.network.stats.messages_sent == golden["messages_sent"]


class TestAggregatedResponses:
    def test_aggregated_responses_complete_requests(self):
        """With responses enabled, every client still completes its requests
        through the aggregated per-(client, batch) acknowledgements."""
        config = ISSConfig(num_nodes=4, random_seed=5, send_client_responses=True)
        workload = WorkloadConfig(num_clients=4, total_rate=200.0, duration=2.0)
        deployment, result = _run_deployment(config, workload)
        assert result.report.completed > 0
        # Completion is recorded client-side (f+1 responses), so the clients'
        # own counters must match the report.
        assert sum(c.requests_completed for c in deployment.clients) >= result.report.completed
        # Aggregation must send far fewer response messages than requests
        # delivered: responses are bundled per commit step.
        delivered_total = sum(n.delivered_count() for n in deployment.nodes)
        assert delivered_total > 0
