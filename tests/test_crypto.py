"""Unit tests for the simulated cryptography (signatures, Merkle, threshold)."""

import pytest

from repro.crypto.hashing import combine_digests, hash_int, sha256
from repro.crypto.merkle import MerkleTree, merkle_root
from repro.crypto.signatures import SIGNATURE_SIZE, KeyStore, SignatureError
from repro.crypto.threshold import PartialSignature, ThresholdError, ThresholdScheme


class TestHashing:
    def test_sha256_concatenates_parts(self):
        assert sha256(b"ab", b"c") == sha256(b"abc")

    def test_hash_int_roundtrip_width(self):
        assert len(hash_int(5)) == 8
        assert hash_int(5) != hash_int(6)

    def test_combine_digests_order_sensitive(self):
        a, b = sha256(b"a"), sha256(b"b")
        assert combine_digests([a, b]) != combine_digests([b, a])


class TestKeyStore:
    def test_sign_verify_roundtrip(self):
        ks = KeyStore(deployment_seed=1)
        sig = ks.sign(3, b"message")
        assert len(sig) == SIGNATURE_SIZE
        assert ks.verify(3, b"message", sig)

    def test_wrong_identity_fails(self):
        ks = KeyStore()
        sig = ks.sign(1, b"m")
        assert not ks.verify(2, b"m", sig)

    def test_wrong_message_fails(self):
        ks = KeyStore()
        sig = ks.sign(1, b"m")
        assert not ks.verify(1, b"other", sig)

    def test_truncated_signature_fails(self):
        ks = KeyStore()
        sig = ks.sign(1, b"m")
        assert not ks.verify(1, b"m", sig[:10])

    def test_verify_or_raise(self):
        ks = KeyStore()
        with pytest.raises(SignatureError):
            ks.verify_or_raise(1, b"m", b"bogus" * 13)

    def test_repeated_verify_is_memoized(self):
        """Re-verifying the same (identity, message) pair must not re-run the
        HMAC: the expected tag is cached after the first verification."""
        ks = KeyStore(deployment_seed=1)
        sig = ks.sign(3, b"message")
        assert ks.verify(3, b"message", sig)
        assert (3, b"message") in ks._expected
        # Cached path still rejects a different signature for the same pair.
        bad = bytearray(sig)
        bad[0] ^= 0xFF
        assert not ks.verify(3, b"message", bytes(bad))


class TestVerifyDigest:
    def _signed(self, ks, identity=1, message=b"payload-bytes"):
        from repro.crypto.hashing import sha256

        signature = ks.sign(identity, message)
        return sha256(message), message, signature

    def test_verify_digest_roundtrip(self):
        ks = KeyStore(deployment_seed=2)
        digest, message, sig = self._signed(ks)
        assert ks.verify_digest(1, digest, sig, lambda: message)

    def test_verify_digest_memoizes_outcome(self):
        ks = KeyStore(deployment_seed=2)
        digest, message, sig = self._signed(ks)
        calls = []

        def build():
            calls.append(1)
            return message

        assert ks.verify_digest(1, digest, sig, build)
        assert ks.verify_digest(1, digest, sig, build)
        assert ks.verify_digest(1, digest, sig, build)
        # The message was only materialised on the cache miss.
        assert len(calls) == 1

    def test_verify_digest_caches_negative_outcome(self):
        ks = KeyStore(deployment_seed=2)
        digest, message, _sig = self._signed(ks)
        forged = b"\x00" * SIGNATURE_SIZE
        assert not ks.verify_digest(1, digest, forged, lambda: message)
        assert not ks.verify_digest(1, digest, forged, lambda: message)

    def test_verify_digest_distinguishes_signatures(self):
        """Two signatures over the same digest are cached independently."""
        ks = KeyStore(deployment_seed=2)
        digest, message, good = self._signed(ks)
        other = ks.sign(2, message)  # valid tag, wrong identity
        assert ks.verify_digest(1, digest, good, lambda: message)
        assert not ks.verify_digest(1, digest, other, lambda: message)

    def test_deterministic_per_seed(self):
        assert KeyStore(5).sign(1, b"m") == KeyStore(5).sign(1, b"m")
        assert KeyStore(5).sign(1, b"m") != KeyStore(6).sign(1, b"m")

    def test_public_keys_differ_per_identity(self):
        ks = KeyStore()
        assert ks.public_key(1) != ks.public_key(2)


class TestMerkle:
    def test_root_changes_with_leaves(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"a", b"c"])

    def test_root_changes_with_order(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_empty_tree_has_stable_root(self):
        assert merkle_root([]) == merkle_root([])

    @pytest.mark.parametrize("count", [1, 2, 3, 7, 8, 13])
    def test_proof_verifies_for_every_leaf(self, count):
        leaves = [sha256(bytes([i])) for i in range(count)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert MerkleTree.verify(tree.root, leaf, proof)

    def test_proof_fails_for_wrong_leaf(self):
        leaves = [sha256(bytes([i])) for i in range(4)]
        tree = MerkleTree(leaves)
        proof = tree.proof(1)
        assert not MerkleTree.verify(tree.root, sha256(b"not-a-leaf"), proof)

    def test_proof_fails_against_wrong_root(self):
        leaves = [sha256(bytes([i])) for i in range(4)]
        tree = MerkleTree(leaves)
        other = MerkleTree([sha256(b"x")])
        assert not MerkleTree.verify(other.root, leaves[0], tree.proof(0))

    def test_proof_index_out_of_range(self):
        tree = MerkleTree([sha256(b"a")])
        with pytest.raises(IndexError):
            tree.proof(5)


class TestThreshold:
    def make_scheme(self, n=4, t=3):
        ks = KeyStore(deployment_seed=2)
        return ThresholdScheme(ks, range(n), t)

    def test_combine_and_verify(self):
        scheme = self.make_scheme()
        digest = sha256(b"block")
        shares = [scheme.sign_share(i, digest) for i in range(3)]
        combined = scheme.combine(shares)
        assert scheme.verify(combined, digest)
        assert len(combined) == 3

    def test_insufficient_shares_rejected(self):
        scheme = self.make_scheme()
        digest = sha256(b"block")
        shares = [scheme.sign_share(i, digest) for i in range(2)]
        with pytest.raises(ThresholdError):
            scheme.combine(shares)

    def test_mismatched_digests_not_counted(self):
        scheme = self.make_scheme()
        shares = [scheme.sign_share(i, sha256(b"a")) for i in range(2)]
        shares.append(scheme.sign_share(2, sha256(b"b")))
        with pytest.raises(ThresholdError):
            scheme.combine(shares)

    def test_forged_share_rejected(self):
        scheme = self.make_scheme()
        digest = sha256(b"block")
        forged = PartialSignature(signer=0, message_digest=digest, share=b"x" * 48)
        assert not scheme.verify_share(forged)

    def test_verify_fails_for_other_digest(self):
        scheme = self.make_scheme()
        digest = sha256(b"block")
        combined = scheme.combine([scheme.sign_share(i, digest) for i in range(3)])
        assert not scheme.verify(combined, sha256(b"other"))

    def test_unknown_signer_rejected(self):
        scheme = self.make_scheme()
        with pytest.raises(ThresholdError):
            scheme.sign_share(99, sha256(b"d"))

    def test_threshold_bounds_validated(self):
        ks = KeyStore()
        with pytest.raises(ThresholdError):
            ThresholdScheme(ks, range(4), 0)
        with pytest.raises(ThresholdError):
            ThresholdScheme(ks, range(4), 5)
