"""Seeded scenario fuzz: random small scenarios on both engines.

Runs the fixed fuzz population (see :mod:`repro.fuzz_smoke`) through
pytest, one scenario per test case: every scenario must satisfy the
standing safety invariants on both engines *and* the two engines must
produce bit-identical runs.  The population derives from one master
seed, so a failure here replays exactly with::

    python -m repro.fuzz_smoke --seed 0x<master_seed> --count <n>

The CLI sweep and this file share generation and checking code — a
violation found by either is reproducible in the other.
"""

from __future__ import annotations

import pytest

from repro.fuzz_smoke import (
    DEFAULT_MASTER_SEED,
    DEFAULT_SCENARIOS,
    check_scenario,
    generate_scenarios,
    random_scenario,
)

POPULATION = generate_scenarios(DEFAULT_SCENARIOS, DEFAULT_MASTER_SEED)


def _scenario_id(spec):
    faults = "+".join(spec["faults"]) or "fault-free"
    return f"{spec['index']:02d}-{spec['protocol']}-n{spec['num_nodes']}-{faults}"


@pytest.mark.parametrize("spec", POPULATION, ids=_scenario_id)
def test_fuzzed_scenario_holds_invariants_on_both_engines(spec):
    """One fuzzed scenario: invariants hold, engines are bit-identical."""
    violations = check_scenario(spec)
    assert not violations, "\n".join(violations)


def test_population_is_deterministic():
    """Same master seed → byte-for-byte identical scenario population."""
    again = generate_scenarios(DEFAULT_SCENARIOS, DEFAULT_MASTER_SEED)
    assert again == POPULATION


def test_population_covers_protocols_and_faults():
    """The default population is diverse enough to mean something."""
    protocols = {spec["protocol"] for spec in POPULATION}
    fault_kinds = {fault for spec in POPULATION for fault in spec["faults"]}
    assert protocols == {"pbft", "hotstuff", "raft"}
    assert {"crash", "straggler", "link-loss"} <= fault_kinds
    assert "member-add" in fault_kinds or "member-remove" in fault_kinds
    assert any(not spec["faults"] for spec in POPULATION)
    assert any(spec["wan_regions"] for spec in POPULATION)


def test_membership_scenarios_shorten_epochs():
    """Reconfiguring scenarios pin the short epoch so activations land."""
    for spec in POPULATION:
        reconfiguring = "member-add" in spec["faults"] or "member-remove" in spec["faults"]
        assert bool(spec["epoch_length"]) == reconfiguring


def test_random_scenario_draws_are_replayable():
    """random_scenario is a pure function of (rng state, index)."""
    import random

    a = random_scenario(random.Random(123), 0)
    b = random_scenario(random.Random(123), 0)
    assert a == b
