"""Observability subsystem tests (tracer, spans, sampler, exporters).

Four contracts are pinned here:

1. **Disabled mode is invisible** — with the obs package imported and the
   ``REPRO_TRACE*`` environment unset, the canonical golden trace replays
   bit-identically, and enabling full tracing does not move the schedule
   (same completions, same delivered-trace digest, same wire traffic).
2. **Spans are complete** — on a seeded scenario every completed request
   closes a monotone submit→admit→propose→commit→deliver→complete chain.
3. **Traces are engine-independent** — the single-queue and sharded
   engines produce identical span rows and time series.
4. **Exports are valid** — the Chrome trace-event file passes the schema
   validator (and the validator actually rejects malformed traces), and
   ``spans.jsonl`` round-trips losslessly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro import golden
from repro.core.config import (
    ENGINE_SHARDED,
    ENGINE_SINGLE,
    ISSConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.harness.runner import Deployment
from repro.obs import ObsConfig
from repro.obs.export import (
    CHROME_TRACE_FILE,
    METRICS_FILE,
    SPANS_FILE,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_run_artifacts,
)
from repro.obs.spans import CHAIN_FIELDS, assemble_spans, chain_violation
from repro.obs.tracer import RequestTracer

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"

ENV_VARS = (
    "REPRO_TRACE",
    "REPRO_TRACE_SAMPLE",
    "REPRO_TRACE_METRICS_INTERVAL",
    "REPRO_TRACE_DIR",
)

FULL_OBS = ObsConfig(trace=True, sample=1.0, metrics_interval=1.0)


def _run(obs, engine=ENGINE_SINGLE, sample=None):
    """Seeded 4-node scenario; ``obs`` may be None (environment path)."""
    if sample is not None:
        obs = ObsConfig(trace=True, sample=sample, metrics_interval=obs.metrics_interval)
    config = ISSConfig(num_nodes=4, random_seed=21)
    workload = WorkloadConfig(num_clients=6, total_rate=250.0, duration=3.0)
    deployment = Deployment(
        config=config,
        workload=workload,
        sim_config=SimConfig(engine=engine),
        obs=obs,
    )
    result = deployment.run()
    return deployment, result


@pytest.fixture(scope="module")
def traced_run():
    """One fully traced run shared by the span/export/sampler tests."""
    deployment, result = _run(FULL_OBS)
    rows = assemble_spans(deployment.tracer.events)
    return deployment, result, rows


class TestDisabledMode:
    """Observability must be invisible unless explicitly enabled."""

    def test_env_defaults_replay_golden_trace(self, monkeypatch):
        """With REPRO_TRACE* unset, the environment path is the disabled
        config and the pinned golden trace replays bit-identically even
        though the obs package is imported and wired into the harness."""
        for var in ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        assert ObsConfig.from_env() == ObsConfig.disabled()

        pinned = json.loads(GOLDEN_PATH.read_text())
        scenario = pinned["scenario"]
        config = ISSConfig(
            num_nodes=scenario["num_nodes"],
            random_seed=scenario["random_seed"],
            send_client_responses=scenario["send_client_responses"],
        )
        workload = WorkloadConfig(
            num_clients=scenario["num_clients"],
            total_rate=scenario["total_rate"],
            duration=scenario["duration"],
            random_seed=scenario["workload_seed"],
        )
        deployment = Deployment(config=config, workload=workload)
        assert deployment.tracer is None
        assert deployment.sampler is None

        trace = []

        def record(node_id, item):
            trace.append(
                (
                    node_id,
                    item.sn,
                    item.batch_sn,
                    item.request.rid.client,
                    item.request.rid.timestamp,
                    round(item.delivered_at, 9),
                )
            )

        for node in deployment.nodes:
            node.on_deliver = record
        for node in deployment.nodes:
            node.start()
        deployment.generator.start()
        deployment.sim.run(until=workload.duration + deployment.drain_time)

        digest = hashlib.sha256(repr(trace).encode()).hexdigest()
        assert digest == pinned["trace_sha256"]
        assert deployment.sim.events_executed == pinned["events_executed"]
        assert deployment.network.stats.messages_sent == pinned["messages_sent"]

    def test_tracing_does_not_move_the_schedule(self, traced_run):
        """Full tracing + sampler: same completions, same delivered order,
        same wire traffic as the untraced run (the sampler's own ticks are
        the only extra simulator events)."""
        off_dep, off_res = _run(ObsConfig.disabled())
        on_dep, on_res, _rows = traced_run
        assert on_res.report.completed == off_res.report.completed
        assert on_res.report.latency == off_res.report.latency
        for traced, untraced in zip(on_res.nodes, off_res.nodes):
            assert golden.trace_sha256(traced) == golden.trace_sha256(untraced)
        assert (
            on_dep.network.stats.messages_sent == off_dep.network.stats.messages_sent
        )

    def test_env_opt_in(self, monkeypatch):
        for var in ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        monkeypatch.setenv("REPRO_TRACE", "yes")
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.25")
        monkeypatch.setenv("REPRO_TRACE_METRICS_INTERVAL", "2.5")
        config = ObsConfig.from_env()
        assert config.trace and config.enabled
        assert config.sample == 0.25
        assert config.metrics_interval == 2.5
        assert config.out_dir is None


class TestSpanCompleteness:
    def test_every_completed_request_closes_its_chain(self, traced_run):
        _dep, result, rows = traced_run
        completed = [r for r in rows if r["complete"] is not None]
        assert len(completed) == result.report.completed > 0
        violations = [v for v in map(chain_violation, completed) if v is not None]
        assert violations == []
        # Delivery is recorded per node: a completed request was delivered
        # on every correct node in this fault-free scenario.
        assert all(r["deliver_nodes"] == 4 for r in completed)
        # Rows come out in first-submit order.
        submits = [r["submit"] for r in rows]
        assert submits == sorted(submits)

    def test_sampling_is_deterministic_subset(self):
        full_dep, _ = _run(FULL_OBS)
        all_rids = {r["rid"] for r in assemble_spans(full_dep.tracer.events)}
        dep_a, _ = _run(FULL_OBS, sample=0.3)
        dep_b, _ = _run(FULL_OBS, sample=0.3)
        rows_a = assemble_spans(dep_a.tracer.events)
        # Same seed + same sample rate: the sampled trace is reproducible.
        assert rows_a == assemble_spans(dep_b.tracer.events)
        sampled_rids = {r["rid"] for r in rows_a}
        assert 0 < len(sampled_rids) < len(all_rids)
        assert sampled_rids <= all_rids
        # Sampling must not perturb the schedule either.
        assert golden.trace_sha256(dep_a.nodes[0]) == golden.trace_sha256(
            full_dep.nodes[0]
        )

    def test_chain_violation_reports_gaps_and_inversions(self):
        row = {name: float(i) for i, name in enumerate(CHAIN_FIELDS)}
        assert chain_violation(row) is None
        row["commit"] = None
        assert chain_violation(row) == "missing commit"
        row["commit"] = 10.0
        assert "precedes" in chain_violation(row)


class TestCrossEngineIdentity:
    def test_engines_produce_identical_traces(self, traced_run):
        single_dep, single_res, single_rows = traced_run
        sharded_dep, sharded_res = _run(FULL_OBS, engine=ENGINE_SHARDED)
        assert sharded_res.report.completed == single_res.report.completed
        assert assemble_spans(sharded_dep.tracer.events) == single_rows
        assert sharded_res.report.timeseries == single_res.report.timeseries


class TestExporters:
    def test_chrome_trace_is_schema_valid(self, traced_run):
        dep, _res, rows = traced_run
        trace = chrome_trace(rows, dep.tracer.events)
        assert validate_chrome_trace(trace) == []
        assert trace["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"M", "X"} <= phases

    def test_validator_rejects_malformed_traces(self, traced_run):
        dep, _res, rows = traced_run
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": {}}) != []
        trace = chrome_trace(rows, dep.tracer.events)
        del trace["traceEvents"][-1]["ph"]
        assert validate_chrome_trace(trace) != []

    def test_artifacts_round_trip(self, traced_run, tmp_path):
        dep, res, rows = traced_run
        write_run_artifacts(
            tmp_path, dep.tracer, timeseries=res.report.timeseries
        )
        assert read_jsonl(tmp_path / SPANS_FILE) == rows
        chrome = json.loads((tmp_path / CHROME_TRACE_FILE).read_text())
        assert validate_chrome_trace(chrome) == []
        metrics = json.loads((tmp_path / METRICS_FILE).read_text())
        assert metrics["timeseries"] == res.report.timeseries


class TestSamplerTimeseries:
    def test_timeseries_shape_and_counters(self, traced_run):
        _dep, result, _rows = traced_run
        timeseries = result.report.timeseries
        assert timeseries["interval"] == 1.0
        times = timeseries["times"]
        assert times == sorted(times) and len(times) > 0
        series = timeseries["series"]
        assert "throughput" in series
        assert "retransmissions" in series
        assert any(name.startswith("drops.") for name in series)
        assert all(len(values) == len(times) for values in series.values())
        # The timeline (duration-limited view of the throughput series)
        # accounts for completions inside the measured window.
        timeline = result.report.throughput_timeline
        assert timeline and all(t <= 3.0 + 1e-9 for t, _rate in timeline)
        assert sum(rate * 1.0 for _t, rate in timeline) <= result.report.completed

    def test_tracer_only_run_has_no_timeseries(self):
        deployment, result = _run(ObsConfig(trace=True, sample=1.0, metrics_interval=0.0))
        assert deployment.sampler is None
        assert result.report.timeseries == {}
        assert result.report.throughput_timeline == []
        assert deployment.tracer is not None and deployment.tracer.events

    def test_tracer_sampling_unit(self):
        tracer = RequestTracer(sample=0.0)
        assert tracer.events == []
        dep, _ = _run(FULL_OBS, sample=0.0)
        # sample=0 traces nothing request-scoped; slot-scoped events remain.
        rows = assemble_spans(dep.tracer.events)
        assert rows == []
