"""Unit tests for the durable storage subsystem (WAL, snapshots, recovery).

Integration coverage — full crash→restart→catch-up across the three SB
protocols — lives in ``tests/test_recovery_integration.py``; these tests pin
the storage-layer mechanics in isolation: append/truncate discipline,
snapshot contiguity, compaction (including the deferred case), and WAL-only
recovery of a fresh ISS node.
"""

import pytest

from repro.core.config import ISSConfig, NetworkConfig
from repro.core.iss import ISSNode
from repro.core.types import CheckpointCertificate, NIL
from repro.crypto.signatures import KeyStore
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.storage import (
    NodeStorage,
    RecoveryManager,
    Snapshot,
    SnapshotStore,
    WriteAheadLog,
    RECORD_CHECKPOINT,
    RECORD_COMMIT,
    RECORD_EPOCH_START,
)
from tests.conftest import make_batch, make_request


def fake_certificate(epoch: int, last_sn: int) -> CheckpointCertificate:
    """An unverified certificate (fine below the verification layer)."""
    return CheckpointCertificate(
        epoch=epoch,
        last_sn=last_sn,
        log_root=b"root-%d" % epoch,
        signatures=((0, b"s0"), (1, b"s1"), (2, b"s2")),
    )


def entry(sn: int):
    return make_batch(make_request(timestamp=sn))


class TestWriteAheadLog:
    def test_appends_preserve_order_and_kinds(self):
        wal = WriteAheadLog()
        wal.append_epoch_start(0)
        wal.append_commit(0, entry(0), 0)
        wal.append_commit(1, NIL, 0)
        wal.append_checkpoint(fake_certificate(0, 1))
        kinds = [record.kind for record in wal.records()]
        assert kinds == [
            RECORD_EPOCH_START,
            RECORD_COMMIT,
            RECORD_COMMIT,
            RECORD_CHECKPOINT,
        ]
        assert len(wal) == 4
        assert wal.appended_total == 4
        assert [sn for sn, _e, _ep in wal.commits()] == [0, 1]
        assert [c.epoch for c in wal.checkpoints()] == [0]
        assert wal.latest_epoch_started() == 0

    def test_truncate_below_drops_covered_records_only(self):
        wal = WriteAheadLog()
        wal.append_epoch_start(0)
        for sn in range(4):
            wal.append_commit(sn, entry(sn), 0)
        wal.append_checkpoint(fake_certificate(0, 3))
        wal.append_epoch_start(1)
        wal.append_commit(4, entry(4), 1)  # ran ahead of the checkpoint
        dropped = wal.truncate_below(4, 1)
        # 4 commits + the epoch-0 start and certificate are covered.
        assert dropped == 6
        assert [sn for sn, _e, _ep in wal.commits()] == [4]
        assert wal.latest_epoch_started() == 1
        assert wal.truncated_total == 6
        assert wal.appended_total == 8

    def test_truncate_is_idempotent(self):
        wal = WriteAheadLog()
        wal.append_commit(0, entry(0), 0)
        assert wal.truncate_below(1, 1) == 1
        assert wal.truncate_below(1, 1) == 0


class TestSnapshotStore:
    def test_install_requires_contiguous_prefix(self):
        store = SnapshotStore()
        gap = Snapshot(
            epoch=0,
            last_sn=2,
            certificate=fake_certificate(0, 2),
            entries=((0, entry(0), 0), (2, entry(2), 0)),
        )
        with pytest.raises(ValueError):
            store.install(gap)
        assert store.latest() is None

    def test_newer_snapshot_replaces_older(self):
        store = SnapshotStore()
        first = Snapshot(
            epoch=0,
            last_sn=0,
            certificate=fake_certificate(0, 0),
            entries=((0, entry(0), 0),),
        )
        second = Snapshot(
            epoch=1,
            last_sn=1,
            certificate=fake_certificate(1, 1),
            entries=((0, entry(0), 0), (1, entry(1), 1)),
        )
        assert store.install(first)
        assert store.install(second)
        assert not store.install(first)  # older: subsumed, rejected
        assert store.latest() is second
        assert store.entry_count() == 2
        assert store.installed_total == 2


class TestNodeStorageCompaction:
    def test_stable_checkpoint_compacts_wal_into_snapshot(self):
        storage = NodeStorage(node_id=0)
        storage.record_epoch_start(0)
        for sn in range(4):
            storage.record_commit(sn, entry(sn), 0)
        storage.record_stable_checkpoint(fake_certificate(0, 3))
        snapshot = storage.latest_snapshot()
        assert snapshot is not None and snapshot.last_sn == 3
        assert [sn for sn, _e, _ep in snapshot.entries] == [0, 1, 2, 3]
        assert len(storage.wal.commits()) == 0
        assert storage.compactions == 1
        assert storage.durable_entry_count() == 4

    def test_incomplete_prefix_defers_compaction(self):
        """A stable checkpoint can outrun the local log (2f+1 peers vote
        first); compaction waits until the gap is filled."""
        storage = NodeStorage(node_id=0)
        storage.record_commit(0, entry(0), 0)
        storage.record_commit(2, entry(2), 0)  # sn 1 missing
        storage.record_stable_checkpoint(fake_certificate(0, 2))
        assert storage.latest_snapshot() is None
        assert storage.deferred_compactions == 1
        # State transfer fills the hole; the next checkpoint retries.
        storage.record_commit(1, entry(1), 0)
        for sn in range(3, 6):
            storage.record_commit(sn, entry(sn), 1)
        storage.record_stable_checkpoint(fake_certificate(1, 5))
        snapshot = storage.latest_snapshot()
        assert snapshot is not None and snapshot.last_sn == 5
        assert storage.compactions == 1

    def test_stale_checkpoint_does_not_regress_snapshot(self):
        storage = NodeStorage(node_id=0)
        for sn in range(2):
            storage.record_commit(sn, entry(sn), 0)
        storage.record_stable_checkpoint(fake_certificate(0, 1))
        before = storage.latest_snapshot()
        storage.record_stable_checkpoint(fake_certificate(0, 0))
        assert storage.latest_snapshot() is before


class RecoveryHarness:
    """A fresh ISS node plus a hand-built storage to recover it from."""

    def __init__(self, epoch_length=4, num_nodes=4):
        self.config = ISSConfig(
            num_nodes=num_nodes,
            epoch_length=epoch_length,
            batch_rate=None,
            max_batch_timeout=0.5,
        )
        self.sim = Simulator(seed=9)
        net_config = NetworkConfig(jitter=0.0)
        self.network = Network(self.sim, net_config, LatencyModel(net_config, num_nodes))
        self.key_store = KeyStore(deployment_seed=2)
        self.delivered = []
        self.storage = NodeStorage(node_id=0)
        self.node = ISSNode(
            node_id=0,
            config=self.config,
            sim=self.sim,
            network=self.network,
            key_store=self.key_store,
            client_ids=[0],
            on_deliver=lambda node_id, item: self.delivered.append(item),
            storage=self.storage,
        )


class TestRecoveryManager:
    def test_wal_only_recovery_replays_commits_and_fast_forwards(self):
        harness = RecoveryHarness()
        storage = harness.storage
        # Epoch 0 fully committed, epoch 1 partially: resume at epoch 1.
        storage.record_epoch_start(0)
        for sn in range(4):
            storage.record_commit(sn, entry(sn), 0)
        storage.record_epoch_start(1)
        storage.record_commit(4, entry(4), 1)

        info = RecoveryManager(storage).recover(harness.node, now=1.0)
        assert info.resume_epoch == 1
        assert info.wal_entries_replayed == 5
        assert info.snapshot_entries == 0
        assert harness.node.log.is_complete(range(5))
        assert harness.node.epochs_completed == 1
        # The restored prefix was re-delivered to the application listener.
        assert info.requests_redelivered == len(harness.delivered) == 5

    def test_replay_does_not_duplicate_persistence(self):
        """Replayed entries must not be re-appended to the WAL."""
        harness = RecoveryHarness()
        storage = harness.storage
        for sn in range(2):
            storage.record_commit(sn, entry(sn), 0)
        appended_before = storage.wal.appended_total
        RecoveryManager(storage).recover(harness.node, now=0.0)
        assert storage.wal.appended_total == appended_before

    def test_empty_storage_recovers_to_epoch_zero(self):
        harness = RecoveryHarness()
        info = RecoveryManager(harness.storage).recover(harness.node, now=0.0)
        assert info.resume_epoch == 0
        assert info.wal_entries_replayed == 0
        assert info.requests_redelivered == 0
