"""Unit tests for workload generation and fault-schedule builders."""

import pytest

from repro.core.config import ISSConfig, WorkloadConfig
from repro.sim.faults import CRASH_EPOCH_END, CRASH_EPOCH_START, CrashSpec, FaultInjector, StragglerSpec
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.core.config import NetworkConfig
from repro.workload.faults import crashes_at, epoch_end_crashes, epoch_start_crashes, stragglers
from repro.workload.generator import WorkloadGenerator


class FakeClient:
    """Stands in for repro.core.client.Client in generator unit tests."""

    def __init__(self, window=10_000):
        self.submitted = []
        self.window = window

    def outstanding_within_watermarks(self):
        return len(self.submitted) < self.window

    def submit(self, payload):
        self.submitted.append(payload)
        return object()


class TestWorkloadGenerator:
    def run_generator(self, rate=200.0, duration=5.0, clients=4, window=10_000):
        sim = Simulator(seed=3)
        fake_clients = [FakeClient(window) for _ in range(clients)]
        workload = WorkloadConfig(num_clients=clients, total_rate=rate, duration=duration, payload_size=16)
        generator = WorkloadGenerator(fake_clients, workload, sim)
        generator.start()
        sim.run(until=duration + 1)
        return generator, fake_clients

    def test_total_rate_approximately_respected(self):
        generator, clients = self.run_generator(rate=400.0, duration=5.0)
        total = sum(len(c.submitted) for c in clients)
        assert 1500 < total < 2500  # 2000 expected

    def test_load_split_across_clients(self):
        generator, clients = self.run_generator(rate=400.0, duration=5.0, clients=4)
        counts = [len(c.submitted) for c in clients]
        assert min(counts) > 0.5 * max(counts)

    def test_no_submissions_after_duration(self):
        sim = Simulator(seed=3)
        clients = [FakeClient()]
        workload = WorkloadConfig(num_clients=1, total_rate=100.0, duration=2.0, payload_size=16)
        generator = WorkloadGenerator(clients, workload, sim)
        generator.start()
        sim.run(until=2.0)
        count_at_end = len(clients[0].submitted)
        sim.run(until=10.0)
        assert len(clients[0].submitted) == count_at_end

    def test_watermark_window_defers_submissions(self):
        generator, clients = self.run_generator(rate=1000.0, duration=2.0, clients=1, window=50)
        assert len(clients[0].submitted) == 50
        assert generator.deferred > 0

    def test_payload_size_respected(self):
        generator, clients = self.run_generator(rate=50.0, duration=1.0, clients=1)
        assert all(len(p) == 16 for p in clients[0].submitted)

    def test_on_submit_callback(self):
        sim = Simulator(seed=3)
        seen = []
        clients = [FakeClient()]
        workload = WorkloadConfig(num_clients=1, total_rate=100.0, duration=1.0, payload_size=8)
        generator = WorkloadGenerator(clients, workload, sim, on_submit=lambda req, t: seen.append(t))
        generator.start()
        sim.run(until=2.0)
        assert len(seen) == len(clients[0].submitted)

    def test_stop_halts_arrivals(self):
        sim = Simulator(seed=3)
        clients = [FakeClient()]
        workload = WorkloadConfig(num_clients=1, total_rate=100.0, duration=10.0, payload_size=8)
        generator = WorkloadGenerator(clients, workload, sim)
        generator.start()
        sim.run(until=1.0)
        generator.stop()
        count = len(clients[0].submitted)
        sim.run(until=10.0)
        assert len(clients[0].submitted) == count

    def test_requires_clients(self):
        with pytest.raises(ValueError):
            WorkloadGenerator([], WorkloadConfig(), Simulator())


class TestFaultSchedules:
    def test_epoch_start_crashes_pick_distinct_high_nodes(self):
        specs = epoch_start_crashes(2, num_nodes=8, epoch=1)
        assert [s.node for s in specs] == [7, 6]
        assert all(s.trigger == CRASH_EPOCH_START and s.epoch == 1 for s in specs)

    def test_epoch_end_crashes(self):
        specs = epoch_end_crashes(1, num_nodes=4)
        assert specs[0].trigger == CRASH_EPOCH_END
        assert specs[0].node == 3

    def test_crashes_at_times(self):
        specs = crashes_at([5.0, 9.0], num_nodes=8)
        assert [s.time for s in specs] == [5.0, 9.0]
        assert len({s.node for s in specs}) == 2

    def test_stragglers(self):
        specs = stragglers(2, num_nodes=8, delay=3.0)
        assert all(isinstance(s, StragglerSpec) and s.delay == 3.0 for s in specs)
        assert all(s.propose_empty for s in specs)

    def test_cannot_fault_every_node(self):
        with pytest.raises(ValueError):
            epoch_start_crashes(4, num_nodes=4)
        with pytest.raises(ValueError):
            stragglers(-1, num_nodes=4)

    def test_crash_spec_validates_trigger(self):
        with pytest.raises(ValueError):
            CrashSpec(node=0, trigger="whenever")


class TestFaultInjector:
    def make_injector(self):
        sim = Simulator(seed=1)
        config = NetworkConfig()
        network = Network(sim, config, LatencyModel(config, 4))
        return sim, network, FaultInjector(sim, network)

    def test_timed_crash(self):
        sim, network, injector = self.make_injector()
        crashed = []
        injector.on_crash = crashed.append
        injector.schedule(CrashSpec(node=2, trigger="at-time", time=1.5))
        sim.run(until=2.0)
        assert crashed == [2]
        assert network.is_crashed(2)

    def test_epoch_start_crash_triggers_on_notification(self):
        sim, network, injector = self.make_injector()
        injector.schedule(CrashSpec(node=1, trigger=CRASH_EPOCH_START, epoch=2))
        injector.notify_epoch_start(1, 1)
        assert not network.is_crashed(1)
        injector.notify_epoch_start(1, 2)
        assert network.is_crashed(1)

    def test_epoch_end_crash_suppresses_last_proposal(self):
        sim, network, injector = self.make_injector()
        injector.schedule(CrashSpec(node=1, trigger=CRASH_EPOCH_END, epoch=0))
        assert injector.notify_last_proposal(1, 0) is True
        assert network.is_crashed(1)
        # Subsequent notifications are no-ops.
        assert injector.notify_last_proposal(1, 0) is False

    def test_crash_is_idempotent(self):
        sim, network, injector = self.make_injector()
        count = []
        injector.on_crash = count.append
        injector.crash_now(3)
        injector.crash_now(3)
        assert count == [3]
        assert injector.crashed_nodes() == (3,)
