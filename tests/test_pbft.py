"""Tests for the PBFT Sequenced-Broadcast implementation."""

import pytest

from repro.core.types import Batch, NIL, SegmentDescriptor, is_nil
from repro.pbft.pbft import PbftSB
from tests.conftest import SBTestBed


def make_bed(num_nodes=4, leader=0, seq_nrs=(0, 1, 2, 3), **kwargs) -> SBTestBed:
    segment = SegmentDescriptor(epoch=0, leader=leader, seq_nrs=tuple(seq_nrs), buckets=(0,))
    return SBTestBed(num_nodes, lambda ctx: PbftSB(ctx), segment=segment, **kwargs)


class TestFaultFree:
    def test_all_nodes_deliver_all_sequence_numbers(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=10.0)
        bed.assert_termination()
        bed.assert_agreement()

    def test_delivered_values_match_leader_proposals(self):
        bed = make_bed()
        fed = bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=10.0)
        delivered_rids = [
            request.rid
            for sn in bed.segment.seq_nrs
            for request in bed.delivered[1][sn].requests
        ]
        assert delivered_rids == [request.rid for request in fed[:8]]

    def test_no_nil_in_fault_free_run(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=10.0)
        for node in range(4):
            assert not any(is_nil(v) for v in bed.delivered[node].values())

    def test_empty_batches_fill_idle_sequence_numbers(self):
        """With no requests, the leader proposes empty batches at the batch timeout."""
        bed = make_bed()
        bed.start_all()
        bed.run(until=10.0)
        bed.assert_termination()
        for value in bed.delivered[0].values():
            assert not is_nil(value)
            assert len(value) == 0

    def test_view_stays_zero_without_faults(self):
        bed = make_bed()
        bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=10.0)
        for instance in bed.instances:
            assert instance.view == 0

    def test_non_leader_never_proposes(self):
        bed = make_bed(leader=2)
        bed.feed_requests(2, 8)
        bed.feed_requests(0, 8)  # node 0 has requests but must not propose
        bed.start_all()
        bed.run(until=10.0)
        assert bed.proposed[0] == {}
        assert len(bed.proposed[2]) == 4

    def test_seven_nodes(self):
        bed = make_bed(num_nodes=7, seq_nrs=(0, 1, 2, 3, 4, 5))
        bed.feed_requests(0, 24)
        bed.start_all()
        bed.run(until=15.0)
        bed.assert_termination()
        bed.assert_agreement()


class TestLeaderFailure:
    def test_crashed_leader_leads_to_nil_delivery(self):
        """SB3/SB4: the instance terminates with ⊥ once the leader is suspected."""
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.crash(0)
        bed.start([1, 2, 3])
        bed.run(until=30.0)
        bed.assert_termination()
        bed.assert_agreement()
        for node in (1, 2, 3):
            assert all(is_nil(v) for v in bed.delivered[node].values())

    def test_leader_crash_mid_segment(self):
        """Batches committed before the crash survive; the rest become ⊥.

        Only one full batch is fed, so the pacer spaces the remaining (empty)
        proposals by the batch timeout and the crash at t=0.5 lands between
        proposals: some positions are already committed, the rest never get
        proposed and must terminate as ⊥.
        """
        bed = make_bed(seq_nrs=(0, 1, 2, 3, 4, 5))
        bed.feed_requests(0, 4)
        bed.start_all()
        bed.run(until=0.5)
        committed_before = dict(bed.delivered[1])
        bed.crash(0)
        bed.run(until=40.0)
        bed.assert_termination()
        bed.assert_agreement()
        for sn, value in committed_before.items():
            assert bed.delivered[1][sn].digest() == value.digest()
        assert any(is_nil(v) for v in bed.delivered[1].values())

    def test_view_change_happened_after_crash(self):
        bed = make_bed()
        bed.crash(0)
        bed.start([1, 2, 3])
        bed.run(until=30.0)
        assert any(inst.view > 0 for inst in bed.instances[1:])

    def test_too_many_crashes_block_progress(self):
        """With more than f crashed nodes the remaining ones cannot commit."""
        bed = make_bed()
        bed.feed_requests(0, 8)
        bed.crash(2)
        bed.crash(3)
        bed.start([0, 1])
        bed.run(until=30.0)
        assert bed.delivered[0] == {} and bed.delivered[1] == {}


class TestFollowerValidation:
    def test_invalid_batches_are_rejected_and_replaced_by_nil(self):
        """Followers refusing a proposal force a view change and ⊥ delivery."""
        bed = SBTestBed(
            4,
            lambda ctx: PbftSB(ctx),
            segment=SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1), buckets=(0,)),
            validate=lambda node, batch: len(batch) == 0,  # reject any non-empty batch
        )
        bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=30.0)
        bed.assert_termination()
        for node in bed.correct_nodes():
            assert all(is_nil(v) or len(v) == 0 for v in bed.delivered[node].values())


class TestMessageComplexity:
    def test_quadratic_vote_traffic_per_batch(self):
        """PBFT sends O(n^2) prepare/commit messages per decided batch."""
        bed = make_bed()
        bed.feed_requests(0, 4)
        bed.start_all()
        bed.run(until=10.0)
        n = 4
        decided = len(bed.segment.seq_nrs)
        # Lower bound: each decision needs ~2 * n * (n-1) votes (prepare+commit).
        assert bed.network.stats.messages_sent >= decided * 2 * n * (n - 1) * 0.5
