"""Unit tests for the leader-side proposal pacer."""

from typing import List, Tuple

from repro.core.config import ISSConfig
from repro.core.pacing import ProposalPacer
from repro.core.sb import SBContext
from repro.core.types import Batch, SegmentDescriptor
from repro.sim.simulator import Simulator
from tests.conftest import make_request


class PacerHarness:
    def __init__(
        self,
        *,
        is_leader: bool = True,
        pending: int = 0,
        proposal_interval: float = 0.0,
        min_batch_timeout: float = 0.0,
        max_batch_timeout: float = 1.0,
        max_batch_size: int = 4,
        proposal_delay: float = 0.0,
        may_propose=None,
        seq_nrs=(0, 1, 2, 3),
    ):
        self.sim = Simulator()
        self.config = ISSConfig(
            num_nodes=4,
            epoch_length=8,
            max_batch_size=max_batch_size,
            batch_rate=None,
            min_batch_timeout=min_batch_timeout,
            max_batch_timeout=max_batch_timeout,
        )
        self.pending = pending
        self.proposals: List[Tuple[float, int, Batch]] = []
        segment = SegmentDescriptor(
            epoch=0, leader=0 if is_leader else 1, seq_nrs=tuple(seq_nrs), buckets=(0,)
        )
        self.context = SBContext(
            node_id=0,
            config=self.config,
            segment=segment,
            all_nodes=[0, 1, 2, 3],
            send_fn=lambda dst, msg: None,
            local_fn=lambda msg: None,
            schedule_fn=self.sim.schedule,
            now_fn=lambda: self.sim.now,
            cut_batch_fn=self._cut,
            validate_batch_fn=lambda batch: True,
            deliver_fn=lambda sn, value: None,
            pending_fn=lambda: self.pending,
            proposal_interval=proposal_interval,
            may_propose_fn=may_propose,
            proposal_delay=proposal_delay,
        )
        self.pacer = ProposalPacer(self.context, self._propose)

    def _cut(self, sn):
        count = min(self.pending, self.config.max_batch_size)
        self.pending -= count
        return Batch.of([make_request(timestamp=sn * 100 + i) for i in range(count)])

    def _propose(self, sn, batch):
        self.proposals.append((self.sim.now, sn, batch))


class TestProposalPacer:
    def test_non_leader_never_proposes(self):
        harness = PacerHarness(is_leader=False, pending=100)
        harness.pacer.start()
        harness.sim.run(until=10.0)
        assert harness.proposals == []

    def test_proposes_all_sequence_numbers_in_order(self):
        harness = PacerHarness(pending=100)
        harness.pacer.start()
        harness.sim.run(until=20.0)
        assert [sn for _, sn, _ in harness.proposals] == [0, 1, 2, 3]
        assert harness.pacer.finished

    def test_respects_proposal_interval(self):
        harness = PacerHarness(pending=1000, proposal_interval=2.0)
        harness.pacer.start()
        harness.sim.run(until=20.0)
        times = [t for t, _, _ in harness.proposals]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 2.0 - 1e-9 for gap in gaps)

    def test_empty_batches_after_max_batch_timeout(self):
        harness = PacerHarness(pending=0, max_batch_timeout=0.5)
        harness.pacer.start()
        harness.sim.run(until=10.0)
        assert len(harness.proposals) == 4
        assert all(len(batch) == 0 for _, _, batch in harness.proposals)
        # Each proposal waited the batch timeout.
        times = [t for t, _, _ in harness.proposals]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 0.5 - 1e-9 for gap in gaps)

    def test_full_batch_proposes_without_waiting_for_timeout(self):
        harness = PacerHarness(pending=1000, max_batch_timeout=5.0)
        harness.pacer.start()
        harness.sim.run(until=30.0)
        assert len(harness.proposals) == 4
        assert harness.proposals[-1][0] < 5.0

    def test_straggler_delay_postpones_each_proposal(self):
        harness = PacerHarness(pending=1000, proposal_delay=1.5)
        harness.pacer.start()
        harness.sim.run(until=30.0)
        times = [t for t, _, _ in harness.proposals]
        assert times[0] >= 1.5
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 1.5 - 1e-9 for gap in gaps)

    def test_may_propose_false_stops_pacer(self):
        calls = []

        def may_propose(sn):
            calls.append(sn)
            return sn < 2

        harness = PacerHarness(pending=1000, may_propose=may_propose)
        harness.pacer.start()
        harness.sim.run(until=30.0)
        assert [sn for _, sn, _ in harness.proposals] == [0, 1]
        assert not harness.pacer.finished

    def test_stop_cancels_future_proposals(self):
        harness = PacerHarness(pending=1000, proposal_interval=1.0)
        harness.pacer.start()
        harness.sim.run(until=1.5)
        harness.pacer.stop()
        count = len(harness.proposals)
        harness.sim.run(until=30.0)
        assert len(harness.proposals) == count

    def test_batch_content_drains_pending(self):
        harness = PacerHarness(pending=6, max_batch_size=4, max_batch_timeout=0.2)
        harness.pacer.start()
        harness.sim.run(until=10.0)
        sizes = [len(batch) for _, _, batch in harness.proposals]
        assert sizes[0] == 4 and sizes[1] == 2
