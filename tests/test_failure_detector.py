"""Unit tests for the ◇S(bz) failure detector."""

from typing import Dict, List

from repro.core.config import NetworkConfig
from repro.fd.detector import EVENT_RESTORE, EVENT_SUSPECT, FailureDetector, HeartbeatMsg
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator


class FDHarness:
    """A group of failure detectors exchanging heartbeats over the network."""

    def __init__(self, num_nodes=4, heartbeat_interval=0.5, initial_timeout=2.0):
        self.sim = Simulator(seed=2)
        config = NetworkConfig(inter_dc_latency=0.02, intra_dc_latency=0.001, jitter=0.0)
        self.network = Network(self.sim, config, LatencyModel(config, num_nodes))
        self.detectors: Dict[int, FailureDetector] = {}
        self.events: List[tuple] = []
        for node in range(num_nodes):
            detector = FailureDetector(
                node_id=node,
                all_nodes=range(num_nodes),
                sim=self.sim,
                broadcast_fn=lambda msg, node=node: self.network.multicast(
                    node, [n for n in range(num_nodes) if n != node], msg
                ),
                heartbeat_interval=heartbeat_interval,
                initial_timeout=initial_timeout,
            )
            detector.subscribe(lambda event, peer, node=node: self.events.append((node, event, peer)))
            self.detectors[node] = detector
            self.network.register(node, detector.handle_message)

    def start(self):
        for detector in self.detectors.values():
            detector.start()


class TestFailureDetector:
    def test_no_suspicion_among_correct_nodes(self):
        harness = FDHarness()
        harness.start()
        harness.sim.run(until=20.0)
        for detector in harness.detectors.values():
            assert detector.suspected == set()

    def test_quiet_node_eventually_suspected_by_all(self):
        """Strong completeness: a crashed node ends up suspected everywhere."""
        harness = FDHarness()
        harness.start()
        harness.sim.run(until=1.0)
        harness.network.crash(3)
        harness.detectors[3].stop()
        harness.sim.run(until=30.0)
        for node in (0, 1, 2):
            assert harness.detectors[node].is_suspected(3)

    def test_restore_after_false_suspicion(self):
        """A partitioned-then-healed node is restored (eventual accuracy)."""
        harness = FDHarness(initial_timeout=1.0)
        harness.start()
        harness.sim.run(until=1.0)
        harness.network.partition([[0, 1, 2], [3]])
        harness.sim.run(until=5.0)
        assert harness.detectors[0].is_suspected(3)
        harness.network.heal_partition()
        harness.sim.run(until=40.0)
        assert not harness.detectors[0].is_suspected(3)
        restore_events = [e for e in harness.events if e[0] == 0 and e[1] == EVENT_RESTORE and e[2] == 3]
        assert restore_events

    def test_timeout_doubles_after_suspicion(self):
        harness = FDHarness(initial_timeout=1.0)
        harness.start()
        harness.network.crash(3)
        harness.detectors[3].stop()
        before = harness.detectors[0].current_timeout(3)
        harness.sim.run(until=10.0)
        assert harness.detectors[0].current_timeout(3) > before

    def test_suspect_event_emitted_once_per_suspicion(self):
        harness = FDHarness(initial_timeout=1.0)
        harness.start()
        harness.network.crash(3)
        harness.detectors[3].stop()
        harness.sim.run(until=20.0)
        suspect_events = [e for e in harness.events if e[0] == 0 and e[1] == EVENT_SUSPECT and e[2] == 3]
        assert len(suspect_events) == 1

    def test_note_alive_resets_suspicion(self):
        harness = FDHarness()
        detector = harness.detectors[0]
        detector.start()
        detector.suspected.add(2)
        detector.note_alive(2)
        assert not detector.is_suspected(2)

    def test_heartbeat_message_identity(self):
        harness = FDHarness()
        detector = harness.detectors[0]
        detector.start()
        detector.suspected.add(2)
        # A heartbeat claiming to be from 2 but arriving from 1 is ignored.
        detector.handle_message(1, HeartbeatMsg(sender=2))
        assert detector.is_suspected(2)
        detector.handle_message(2, HeartbeatMsg(sender=2))
        assert not detector.is_suspected(2)

    def test_stop_cancels_timers(self):
        harness = FDHarness()
        harness.start()
        for detector in harness.detectors.values():
            detector.stop()
        pending_before = harness.sim.pending_events()
        harness.sim.run(until=60.0)
        # No suspicion events should ever fire after stop.
        assert all(event != EVENT_SUSPECT for _, event, _ in harness.events)
