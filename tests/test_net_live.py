"""Unit tests for the live backend: wall clock, TCP transport, KV service.

Everything here runs inside one process (loopback sockets, single asyncio
loop); the full multi-process deployment is exercised by
``python -m repro.live_smoke``.
"""

import asyncio

import pytest

from repro.app.kv import (
    OP_CAS,
    OP_GET,
    OP_PUT,
    KVStateMachine,
    decode_op,
    encode_cas,
    encode_get,
    encode_put,
)
from repro.core.membership import ConfigTx, encode_config_tx
from repro.net.clock import WallClock
from repro.net.transport import TcpTransport, encode_frame
from repro.runtime.api import Scheduler, Transport


def run(coro):
    return asyncio.run(coro)


# -------------------------------------------------------------- wall clock
def test_wallclock_satisfies_scheduler_protocol():
    async def check():
        clock = WallClock(seed=3)
        assert isinstance(clock, Scheduler)
        assert clock.rng.random() == WallClock(seed=3).rng.random()

    run(check())


def test_wallclock_timers_fire_in_order():
    async def check():
        clock = WallClock(seed=0)
        fired = []
        clock.schedule(0.02, lambda: fired.append("late"))
        clock.schedule(0.005, lambda: fired.append("early"))
        clock.schedule_callback(0.01, lambda: fired.append("mid"))
        await asyncio.sleep(0.08)
        assert fired == ["early", "mid", "late"]
        assert clock.events_executed == 3
        assert clock.now >= 0.02

    run(check())


def test_wallclock_timer_cancel_and_reset():
    async def check():
        clock = WallClock(seed=0)
        fired = []
        cancelled = clock.schedule(0.01, lambda: fired.append("cancelled"))
        cancelled.cancel()
        assert not cancelled.active
        reset = clock.schedule(0.5, lambda: fired.append("reset"))
        reset.reset(0.01)  # re-arm much sooner
        await asyncio.sleep(0.1)
        assert fired == ["reset"]
        assert not reset.active

    run(check())


def test_wallclock_schedule_at_past_fires_asap():
    async def check():
        clock = WallClock(seed=0)
        fired = []
        clock.schedule_at(clock.now - 5.0, lambda: fired.append(1))
        await asyncio.sleep(0.05)
        assert fired == [1]

    run(check())


# --------------------------------------------------------------- transport
def test_tcp_transport_satisfies_transport_protocol():
    async def check():
        clock = WallClock(seed=0)
        transport = TcpTransport(clock, peers={})
        assert isinstance(transport, Transport)
        await transport.close()

    run(check())


def test_tcp_transport_loopback_between_two_transports():
    async def check():
        clock = WallClock(seed=0)
        addr_a = ("127.0.0.1", 7940)
        addr_b = ("127.0.0.1", 7941)
        a = TcpTransport(clock, peers={1: addr_b}, listen=addr_a)
        b = TcpTransport(clock, peers={0: addr_a}, listen=addr_b)
        got_a, got_b = [], []
        a.register(0, lambda src, msg: got_a.append((src, msg)))
        b.register(1, lambda src, msg: got_b.append((src, msg)))
        await a.start()
        await b.start()
        try:
            a.send(0, 1, "ping")
            b.send(1, 0, "pong")
            deadline = clock.now + 5.0
            while (not got_a or not got_b) and clock.now < deadline:
                await asyncio.sleep(0.01)
            assert got_b == [(0, "ping")]
            assert got_a == [(1, "pong")]
            assert a.stats.messages_sent == 1
            assert b.stats.frames_received == 1
        finally:
            await a.close()
            await b.close()

    run(check())


def test_tcp_transport_local_shortcircuit_and_unknown_drop():
    async def check():
        clock = WallClock(seed=0)
        transport = TcpTransport(clock, peers={})
        got = []
        transport.register(5, lambda src, msg: got.append((src, msg)))
        transport.send(9, 5, "local")  # registered endpoint: no socket
        transport.send(9, 77, "nowhere")  # no route at all: dropped
        await asyncio.sleep(0.01)
        assert got == [(9, "local")]
        assert transport.stats.messages_dropped == 1
        await transport.close()

    run(check())


def test_frame_encoding_round_trips():
    import pickle
    import struct

    frame = encode_frame(3, 9, ("hello", 42))
    (length,) = struct.Struct(">I").unpack(frame[:4])
    assert length == len(frame) - 4
    assert pickle.loads(frame[4:]) == (3, 9, ("hello", 42))


# ---------------------------------------------------------------- KV codec
def test_kv_codec_round_trips():
    assert decode_op(encode_put("k", "v")) == (OP_PUT, ("k", "v"))
    assert decode_op(encode_get("k")) == (OP_GET, ("k",))
    assert decode_op(encode_cas("k", "a", "b")) == (OP_CAS, ("k", "a", "b"))
    assert decode_op(encode_put("κλειδί", "τιμή")) == (OP_PUT, ("κλειδί", "τιμή"))


@pytest.mark.parametrize(
    "payload",
    [
        b"",
        b"\x00",
        b"Z" + b"\x00\x00\x00\x01x",  # unknown op
        b"P",  # missing fields
        b"P\x00\x00\x00\x05ab",  # length past the end
        b"P\x00\x00\x00\x01a\x00\x00\x00\x01b\xff",  # trailing garbage
        b"P\x00\x00\x00\x02\xff\xfe\x00\x00\x00\x01b",  # invalid UTF-8
        encode_config_tx(ConfigTx("add", 9)),  # a real non-KV payload from the log
        b"\x00" * 64,  # benchmark padding
    ],
)
def test_kv_decode_rejects_non_kv_payloads(payload):
    assert decode_op(payload) is None


def test_kv_state_machine_semantics():
    machine = KVStateMachine()
    put = machine.apply(encode_put("k", "v1"))
    assert put.ok and put.value == "v1"
    missing = machine.apply(encode_get("absent"))
    assert not missing.ok and missing.value is None
    hit = machine.apply(encode_get("k"))
    assert hit.ok and hit.value == "v1"
    swapped = machine.apply(encode_cas("k", "v1", "v2"))
    assert swapped.ok and swapped.value == "v2"
    refused = machine.apply(encode_cas("k", "v1", "v3"))
    assert not refused.ok and refused.value == "v2"
    assert machine.store == {"k": "v2"}
    assert machine.applied == 5 and machine.skipped == 0


def test_kv_state_machine_skips_foreign_payloads():
    machine = KVStateMachine()
    assert machine.apply(encode_config_tx(ConfigTx("remove", 2))) is None
    assert machine.apply(b"\x00" * 16) is None
    machine.apply(encode_put("k", "v"))
    assert machine.applied == 1 and machine.skipped == 2


def test_kv_replicas_converge_from_same_sequence():
    ops = [
        encode_put("a", "1"),
        encode_cas("a", "1", "2"),
        encode_config_tx(ConfigTx("add", 5)),
        encode_put("b", "3"),
        encode_cas("a", "wrong", "9"),
    ]
    machines = [KVStateMachine() for _ in range(3)]
    for machine in machines:
        for op in ops:
            machine.apply(op)
    assert all(m.store == {"a": "2", "b": "3"} for m in machines)
