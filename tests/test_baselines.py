"""Tests for the single-leader and Mir-BFT baselines."""

import pytest

from repro.baselines.mirbft import MirBFTNode, NewEpochMsg
from repro.baselines.single_leader import FixedLeaderPolicy, single_leader_config, single_leader_policy
from repro.core.config import ISSConfig, WorkloadConfig
from repro.core.leader_policy import FailureHistory
from repro.harness.runner import Deployment
from repro.workload.faults import epoch_start_crashes


class TestFixedLeaderPolicy:
    def test_always_returns_single_leader(self):
        policy = FixedLeaderPolicy(num_nodes=4, max_faulty=1, leader=2)
        for epoch in range(5):
            assert policy.leaders(epoch, FailureHistory()) == [2]

    def test_leader_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FixedLeaderPolicy(num_nodes=4, max_faulty=1, leader=7)

    def test_config_defaults(self):
        config = single_leader_config("pbft", 8)
        assert config.batch_rate is None
        assert config.min_segment_size == 1
        policy = single_leader_policy(config)
        assert policy.leaders(3, FailureHistory()) == [0]


def run_deployment(config, node_class=None, policy_factory=None, crash_specs=(), duration=8.0, rate=200.0):
    workload = WorkloadConfig(num_clients=4, total_rate=rate, duration=duration, payload_size=128)
    kwargs = dict(workload=workload, crash_specs=crash_specs, drain_time=8.0)
    if node_class is not None:
        kwargs["node_class"] = node_class
    if policy_factory is not None:
        kwargs["policy_factory"] = policy_factory
    return Deployment(config, **kwargs).run()


class TestSingleLeaderDeployment:
    def test_single_leader_delivers_everything(self):
        config = single_leader_config(
            "pbft", 4, epoch_length=16, max_batch_size=32, max_batch_timeout=0.5,
            view_change_timeout=3.0, epoch_change_timeout=3.0,
        )
        result = run_deployment(config, policy_factory=lambda c: single_leader_policy(c))
        assert result.report.completed == result.report.submitted > 0

    def test_all_batches_proposed_by_node_zero(self):
        config = single_leader_config(
            "pbft", 4, epoch_length=16, max_batch_size=32, max_batch_timeout=0.5,
            view_change_timeout=3.0, epoch_change_timeout=3.0,
        )
        result = run_deployment(config, policy_factory=lambda c: single_leader_policy(c))
        node = result.nodes[1]
        for epoch in range(node.epochs_completed):
            for segment in node.manager.segments_for(epoch):
                assert segment.leader == 0

    def test_leader_nic_carries_most_traffic(self):
        """The single-leader bandwidth bottleneck is visible in per-node bytes."""
        config = single_leader_config(
            "pbft", 4, epoch_length=16, max_batch_size=32, max_batch_timeout=0.5,
            view_change_timeout=3.0, epoch_change_timeout=3.0,
        )
        result = run_deployment(config, policy_factory=lambda c: single_leader_policy(c))
        per_node = result.network.stats.per_node_bytes_sent
        node_bytes = {n: per_node.get(n, 0) for n in range(4)}
        assert node_bytes[0] > 2 * max(node_bytes[n] for n in (1, 2, 3))


class TestMirBFT:
    def make_config(self, **overrides):
        defaults = dict(
            epoch_length=16, max_batch_size=32, batch_rate=8.0, max_batch_timeout=0.5,
            view_change_timeout=3.0, epoch_change_timeout=3.0,
        )
        defaults.update(overrides)
        return ISSConfig(num_nodes=4, protocol="pbft", **defaults)

    def test_fault_free_equivalent_delivery(self):
        result = run_deployment(self.make_config(), node_class=MirBFTNode)
        assert result.report.completed == result.report.submitted > 0
        node = result.nodes[0]
        assert node.graceful_epoch_changes > 0
        assert node.ungraceful_epoch_changes == 0

    def test_epoch_primary_rotates(self):
        result = run_deployment(self.make_config(), node_class=MirBFTNode)
        node = result.nodes[0]
        primaries = {node.epoch_primary(e) for e in range(4)}
        assert primaries == {0, 1, 2, 3}

    def test_crashed_primary_causes_recurring_ungraceful_epoch_changes(self):
        """Figure 10's phenomenon: every time the crashed node's turn as epoch
        primary comes up, the epoch change times out."""
        result = run_deployment(
            self.make_config(),
            node_class=MirBFTNode,
            crash_specs=epoch_start_crashes(1, 4, epoch=0),
            duration=45.0,
            rate=200.0,
        )
        alive = [n for n in result.nodes if not n.crashed]
        assert all(isinstance(n, MirBFTNode) for n in alive)
        assert any(n.ungraceful_epoch_changes >= 2 for n in alive)
        # Liveness is still preserved.
        assert result.report.completed == result.report.submitted > 0

    def test_new_epoch_message_from_wrong_primary_ignored(self):
        result = run_deployment(self.make_config(), node_class=MirBFTNode, duration=4.0)
        node = [n for n in result.nodes if not n.crashed][0]
        bogus_epoch = node.current_epoch + 5
        wrong_sender = (node.epoch_primary(bogus_epoch) + 1) % 4
        node.on_message(wrong_sender, NewEpochMsg(epoch=bogus_epoch, primary=wrong_sender))
        assert bogus_epoch not in node._new_epoch_received

    def test_mirbft_latency_worse_than_iss_under_crash(self):
        """ISS recovers once; Mir keeps stalling on the crashed primary."""
        crash = epoch_start_crashes(1, 4, epoch=0)
        iss = run_deployment(self.make_config(), crash_specs=crash, duration=40.0)
        mir = run_deployment(self.make_config(), node_class=MirBFTNode, crash_specs=crash, duration=40.0)
        assert mir.report.latency.mean > iss.report.latency.mean
