"""Unit tests for the WAN latency model."""

import random

import pytest

from repro.core.config import NetworkConfig
from repro.sim.latency import DATACENTER_NAMES, LatencyModel


class TestLatencyModel:
    def make_model(self, num_nodes=16, **overrides):
        config = NetworkConfig(**overrides)
        return LatencyModel(config, num_nodes)

    def test_self_latency_is_zero(self):
        model = self.make_model()
        assert model.base_latency(3, 3) == 0.0

    def test_symmetry(self):
        model = self.make_model()
        for a in range(8):
            for b in range(8):
                assert model.base_latency(a, b) == model.base_latency(b, a)

    def test_same_datacenter_is_fast(self):
        model = self.make_model(num_nodes=32, num_datacenters=16)
        # Nodes 0 and 16 share datacenter 0.
        assert model.base_latency(0, 16) == pytest.approx(model.config.intra_dc_latency)

    def test_cross_datacenter_is_slower_than_intra(self):
        model = self.make_model(num_nodes=32)
        assert model.base_latency(0, 1) > model.base_latency(0, 16)

    def test_latency_bounded_by_scale_range(self):
        model = self.make_model()
        mean = model.config.inter_dc_latency
        for a in range(16):
            for b in range(16):
                if model.datacenter_of(a) != model.datacenter_of(b):
                    assert 0.25 * mean <= model.base_latency(a, b) <= 1.75 * mean

    def test_nodes_spread_uniformly_over_datacenters(self):
        model = self.make_model(num_nodes=32, num_datacenters=16)
        counts = {}
        for node in range(32):
            counts[model.datacenter_of(node)] = counts.get(model.datacenter_of(node), 0) + 1
        assert all(count == 2 for count in counts.values())

    def test_jitter_stays_within_bounds(self):
        model = self.make_model(jitter=0.1)
        rng = random.Random(1)
        base = model.base_latency(0, 5)
        for _ in range(100):
            sample = model.sample_latency(0, 5, rng)
            assert 0.9 * base <= sample <= 1.1 * base

    def test_zero_jitter_is_deterministic(self):
        model = self.make_model(jitter=0.0)
        rng = random.Random(1)
        assert model.sample_latency(0, 5, rng) == model.base_latency(0, 5)

    def test_mean_latency_positive(self):
        model = self.make_model()
        assert model.mean_latency() > 0

    def test_datacenter_names_cover_16_locations(self):
        assert len(DATACENTER_NAMES) == 16
        model = self.make_model()
        assert model.datacenter_name(0) == DATACENTER_NAMES[0]

    def test_extra_endpoints_get_placed(self):
        model = self.make_model(num_nodes=4)
        model.register_extra_endpoints([1_000_000, 1_000_001])
        assert model.base_latency(0, 1_000_000) >= 0.0
        assert 1_000_000 in model.placement
