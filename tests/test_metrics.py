"""Unit tests for metrics collection and report formatting."""

import pytest

from repro.core.types import DeliveredRequest, RequestId
from repro.metrics.collector import LatencySummary, MetricsCollector
from repro.metrics.report import format_series, format_table, print_banner, speedup
from tests.conftest import make_request


def delivered(request, at, batch_sn=0):
    return DeliveredRequest(request=request, sn=0, batch_sn=batch_sn, epoch=0, delivered_at=at)


class TestLatencySummary:
    def test_empty_samples(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0 and summary.mean == 0.0

    def test_percentiles(self):
        samples = [float(i) for i in range(1, 101)]
        summary = LatencySummary.from_samples(samples)
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.maximum == 100.0

    def test_single_sample(self):
        summary = LatencySummary.from_samples([2.5])
        assert summary.p50 == summary.p95 == summary.maximum == 2.5


class TestMetricsCollector:
    def test_completion_requires_quorum_of_nodes(self):
        collector = MetricsCollector(completion_quorum=2)
        request = make_request()
        collector.record_submit(request.rid, 1.0)
        collector.record_delivery(0, delivered(request, at=2.0))
        assert collector.completed_count() == 0
        collector.record_delivery(1, delivered(request, at=3.0))
        assert collector.completed_count() == 1
        report = collector.report(duration=10.0)
        assert report.latency.mean == pytest.approx(2.0)

    def test_duplicate_deliveries_from_same_node_do_not_complete(self):
        collector = MetricsCollector(completion_quorum=2)
        request = make_request()
        collector.record_submit(request.rid, 0.0)
        collector.record_delivery(0, delivered(request, at=1.0))
        collector.record_delivery(0, delivered(request, at=1.5))
        assert collector.completed_count() == 0

    def test_client_completion_path(self):
        collector = MetricsCollector(completion_quorum=2)
        request = make_request()
        collector.record_client_completion(0, request, submitted_at=1.0, completed_at=4.0)
        report = collector.report(duration=10.0)
        assert report.completed == 1
        assert report.latency.mean == pytest.approx(3.0)

    def test_completion_counted_once_across_paths(self):
        collector = MetricsCollector(completion_quorum=1)
        request = make_request()
        collector.record_submit(request.rid, 0.0)
        collector.record_delivery(0, delivered(request, at=1.0))
        collector.record_client_completion(0, request, submitted_at=0.0, completed_at=5.0)
        assert collector.completed_count() == 1
        assert collector.report(duration=10.0).latency.maximum == pytest.approx(1.0)

    def test_warmup_excludes_early_submissions(self):
        collector = MetricsCollector(completion_quorum=1, warmup=5.0)
        early, late = make_request(timestamp=0), make_request(timestamp=1)
        collector.record_submit(early.rid, 1.0)
        collector.record_submit(late.rid, 6.0)
        collector.record_delivery(0, delivered(early, at=7.0))
        collector.record_delivery(0, delivered(late, at=8.0))
        report = collector.report(duration=10.0)
        assert report.completed == 1

    def test_throughput(self):
        collector = MetricsCollector(completion_quorum=1)
        for i in range(10):
            request = make_request(timestamp=i)
            collector.record_submit(request.rid, 0.1 * i)
            collector.record_delivery(0, delivered(request, at=0.5 + i * 0.1))
        report = collector.report(duration=2.0)
        assert report.throughput == pytest.approx(5.0)
        # Per-second timelines come from the observability sampler
        # (``repro.obs.MetricsSampler``), not from the collector.
        assert report.throughput_timeline == []

    def test_report_extra_passthrough(self):
        collector = MetricsCollector(completion_quorum=1)
        report = collector.report(duration=1.0, extra={"epochs": 3.0})
        assert report.extra["epochs"] == 3.0

    def test_invalid_quorum(self):
        with pytest.raises(ValueError):
            MetricsCollector(completion_quorum=0)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "123456" in lines[3]

    def test_format_series(self):
        text = format_series("tput", [(1.0, 100.0), (2.0, 200.0)])
        assert "1.0s:100" in text and "2.0s:200" in text

    def test_speedup(self):
        assert speedup(100.0, 10.0) == pytest.approx(10.0)
        assert speedup(100.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0

    def test_print_banner_smoke(self, capsys):
        print_banner("Figure 5")
        assert "Figure 5" in capsys.readouterr().out
