"""Shared fixtures and helpers for the test suite.

The most important helper is :class:`SBTestBed`, a miniature deployment that
runs a set of Sequenced-Broadcast instances (one per node) for a single
segment over the simulated network, without the full ISS node around them.
Protocol tests (PBFT, HotStuff, Raft, SB-from-consensus) use it to check the
SB properties in isolation; integration tests use the full
:class:`repro.harness.Deployment` instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import pytest

from repro.core.config import ISSConfig, NetworkConfig
from repro.core.sb import SBContext, SBInstance
from repro.core.types import Batch, NIL, Request, RequestId, SegmentDescriptor, is_nil
from repro.crypto.signatures import KeyStore
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator


def make_request(client: int = 0, timestamp: int = 0, payload: bytes = b"op") -> Request:
    """Unsigned request helper for tests that skip signature verification."""
    return Request(rid=RequestId(client=client, timestamp=timestamp), payload=payload)


def make_signed_request(key_store: KeyStore, client: int, timestamp: int, payload: bytes = b"op") -> Request:
    from repro.core.validation import sign_request

    return sign_request(key_store, make_request(client, timestamp, payload))


def make_batch(*requests: Request) -> Batch:
    return Batch.of(requests)


class SBTestBed:
    """Runs one SB instance per node for a single segment over the simulator.

    Each node's context draws proposals from a per-node request queue
    (``feed_requests``), accepts every batch as valid by default, and records
    deliveries in ``delivered[node][sn]``.
    """

    def __init__(
        self,
        num_nodes: int,
        factory: Callable[[SBContext], SBInstance],
        segment: Optional[SegmentDescriptor] = None,
        config: Optional[ISSConfig] = None,
        network_config: Optional[NetworkConfig] = None,
        validate: Optional[Callable[[int, Batch], bool]] = None,
        seed: int = 1,
    ):
        self.config = config or ISSConfig(
            num_nodes=num_nodes,
            protocol="pbft",
            epoch_length=8,
            max_batch_size=4,
            batch_rate=None,
            min_batch_timeout=0.0,
            max_batch_timeout=0.2,
            view_change_timeout=3.0,
            epoch_change_timeout=3.0,
            client_signatures=False,
        )
        self.segment = segment or SegmentDescriptor(
            epoch=0, leader=0, seq_nrs=(0, 1, 2, 3), buckets=tuple(range(self.config.num_buckets))
        )
        self.sim = Simulator(seed=seed)
        net_config = network_config or NetworkConfig(
            bandwidth_bps=1e9, inter_dc_latency=0.02, intra_dc_latency=0.001, jitter=0.0
        )
        self.latency = LatencyModel(net_config, num_nodes)
        self.network = Network(self.sim, net_config, self.latency)
        self.key_store = KeyStore(deployment_seed=seed)
        self.num_nodes = num_nodes
        self._validate = validate
        #: Per-node queues of requests available for batching.
        self.request_queues: Dict[int, List[Request]] = {n: [] for n in range(num_nodes)}
        #: delivered[node][sn] = value
        self.delivered: Dict[int, Dict[int, object]] = {n: {} for n in range(num_nodes)}
        #: proposed[node][sn] = batch handed out by cut_batch
        self.proposed: Dict[int, Dict[int, Batch]] = {n: {} for n in range(num_nodes)}
        self.instances: List[SBInstance] = []
        self.contexts: List[SBContext] = []
        for node in range(num_nodes):
            context = self._build_context(node)
            self.contexts.append(context)
            self.instances.append(factory(context))
            self.network.register(node, self._make_handler(node))

    # ------------------------------------------------------------ wiring
    def _make_handler(self, node: int) -> Callable[[int, object], None]:
        def handler(src: int, message: object) -> None:
            self.instances[node].handle_message(src, message)

        return handler

    def _build_context(self, node: int) -> SBContext:
        def cut_batch(sn: int, node=node) -> Batch:
            queue = self.request_queues[node]
            taken = queue[: self.config.max_batch_size]
            del queue[: len(taken)]
            batch = Batch.of(taken)
            self.proposed[node][sn] = batch
            return batch

        def validate(batch: Batch, node=node) -> bool:
            if self._validate is None:
                return True
            return self._validate(node, batch)

        def deliver(sn: int, value: object, node=node) -> None:
            assert sn not in self.delivered[node], f"node {node} delivered sn {sn} twice"
            self.delivered[node][sn] = value

        return SBContext(
            node_id=node,
            config=self.config,
            segment=self.segment,
            all_nodes=list(range(self.num_nodes)),
            send_fn=lambda dst, msg, node=node: self.network.send(node, dst, msg),
            local_fn=lambda msg, node=node: self.sim.call_soon(
                lambda: self.instances[node].handle_message(node, msg)
            ),
            schedule_fn=self.sim.schedule,
            now_fn=lambda: self.sim.now,
            cut_batch_fn=cut_batch,
            validate_batch_fn=validate,
            deliver_fn=deliver,
            pending_fn=lambda node=node: len(self.request_queues[node]),
            key_store=self.key_store,
        )

    # ------------------------------------------------------------ control
    def feed_requests(self, node: int, count: int, client: int = 0, start_ts: int = 0) -> List[Request]:
        requests = [make_request(client=client, timestamp=start_ts + i) for i in range(count)]
        self.request_queues[node].extend(requests)
        return requests

    def start_all(self) -> None:
        for instance in self.instances:
            instance.start()

    def start(self, nodes: List[int]) -> None:
        for node in nodes:
            self.instances[node].start()

    def crash(self, node: int) -> None:
        self.network.crash(node)
        self.instances[node].stop()

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ----------------------------------------------------------- assertions
    def correct_nodes(self) -> List[int]:
        return [n for n in range(self.num_nodes) if not self.network.is_crashed(n)]

    def assert_termination(self, nodes: Optional[List[int]] = None) -> None:
        """SB3: every (correct) node delivered something for every sequence number."""
        for node in nodes if nodes is not None else self.correct_nodes():
            missing = [sn for sn in self.segment.seq_nrs if sn not in self.delivered[node]]
            assert not missing, f"node {node} missing deliveries for {missing}"

    def assert_agreement(self) -> None:
        """SB2: no two correct nodes delivered different values for the same sn."""
        reference: Dict[int, bytes] = {}
        for node in self.correct_nodes():
            for sn, value in self.delivered[node].items():
                digest = value.digest() if not is_nil(value) else b"NIL"
                if sn in reference:
                    assert reference[sn] == digest, f"disagreement at sn {sn}"
                else:
                    reference[sn] = digest


@pytest.fixture
def key_store() -> KeyStore:
    return KeyStore(deployment_seed=99)


@pytest.fixture
def small_config() -> ISSConfig:
    return ISSConfig(
        num_nodes=4,
        protocol="pbft",
        epoch_length=8,
        max_batch_size=8,
        batch_rate=16.0,
        max_batch_timeout=0.5,
        view_change_timeout=3.0,
        epoch_change_timeout=3.0,
    )
