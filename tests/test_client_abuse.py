"""Malicious-client suite: the Section 3.7 defences under actual attack.

Covers the acceptance claims of the client-side adversary subsystem:

* with f abusive clients (watermark abuse, duplicate flooding, bucket
  bias, forged signatures) every correct client's requests complete and
  all nodes deliver identical request sequences,
* every abusive submission class is rejected and counted in
  ``RunReport.client_abuse`` (watermark rejections, absorbed duplicates,
  signature rejections attributed to the claimed victim),
* the out-of-order-completion watermark wedge is fixed client-side
  (failing-before/passing-after regression tests),
* per-client node state stays bounded: delivered filters and signature
  caches are garbage collected below advanced watermarks, watermark
  out-of-order buffers are pruned and capped by the window,
* the machinery composes with wire batching on AND off, and
* the seeded client-abuse smoke scenario replays against its golden trace.
"""

import json

import pytest

from repro.core.client import Client
from repro.core.config import ISSConfig, NetworkConfig, WorkloadConfig
from repro.core.types import Batch, RequestId
from repro.core.validation import ClientWatermarks
from repro.harness.runner import Deployment
from repro.harness.scenarios import (
    client_abuse_point,
    client_abuse_sweep,
    prefixes_identical,
    watermark_stall,
)
from repro.sim.client_adversary import AbusiveClient
from repro.sim.faults import (
    CLIENT_BUCKET_BIAS,
    CLIENT_DUPLICATE_FLOOD,
    CLIENT_FORGED_SIGNATURE,
    CLIENT_WATERMARK_ABUSE,
    MaliciousClientSpec,
)
from repro.workload.faults import abusive_clients

from repro import client_abuse_smoke


WINDOW = 1024


def abusive_config(num_nodes=4, seed=7, window=WINDOW, **overrides):
    defaults = dict(
        epoch_length=16,
        max_batch_size=64,
        batch_rate=16.0,
        view_change_timeout=5.0,
        epoch_change_timeout=5.0,
        client_watermark_window=window,
        send_client_responses=True,
        random_seed=seed,
    )
    defaults.update(overrides)
    return ISSConfig(num_nodes=num_nodes, **defaults)


def run_abusive(
    config,
    specs,
    duration=8.0,
    rate=300.0,
    num_clients=6,
    drain_time=15.0,
    batch_flush_interval=0.0,
):
    deployment = Deployment(
        config,
        network_config=NetworkConfig(batch_flush_interval=batch_flush_interval),
        workload=WorkloadConfig(
            num_clients=num_clients, total_rate=rate, duration=duration
        ),
        malicious_client_specs=specs,
        drain_time=drain_time,
    )
    return deployment, deployment.run()


def correct_clients(result, specs):
    abusive = {spec.client for spec in specs}
    return [c for c in result.clients if c.client_id not in abusive]


class TestMaliciousClientSpec:
    def test_rejects_unknown_behaviour(self):
        with pytest.raises(ValueError):
            MaliciousClientSpec(client=0, behaviour="tantrum")

    def test_flood_requires_factor(self):
        with pytest.raises(ValueError):
            MaliciousClientSpec(
                client=0, behaviour=CLIENT_DUPLICATE_FLOOD, flood_factor=1
            )

    def test_forgery_requires_victim(self):
        with pytest.raises(ValueError):
            MaliciousClientSpec(client=0, behaviour=CLIENT_FORGED_SIGNATURE)

    def test_forging_own_identity_rejected(self):
        with pytest.raises(ValueError):
            MaliciousClientSpec(
                client=3, behaviour=CLIENT_FORGED_SIGNATURE, victim=3
            )

    def test_builder_counts_down_with_distinct_victims(self):
        specs = abusive_clients(2, 8, behaviour=CLIENT_FORGED_SIGNATURE)
        assert [spec.client for spec in specs] == [7, 6]
        assert [spec.victim for spec in specs] == [0, 1]
        assert len({spec.victim for spec in specs}) == 2

    def test_builder_rejects_all_clients_abusive(self):
        with pytest.raises(ValueError):
            abusive_clients(4, 4)

    def test_builder_victims_are_always_correct_clients(self):
        """Victims must come from the correct-client range even when the
        abusers outnumber the correct clients (regression: victim == abuser
        used to crash the builder at higher counts)."""
        specs = abusive_clients(4, 7, behaviour=CLIENT_FORGED_SIGNATURE)
        abusers = {spec.client for spec in specs}
        assert abusers == {6, 5, 4, 3}
        for spec in specs:
            assert spec.victim not in abusers
            assert spec.victim < 7 - 4  # drawn from the correct ids only
        specs = abusive_clients(5, 6, behaviour=CLIENT_FORGED_SIGNATURE)
        assert all(spec.victim == 0 for spec in specs)  # one correct client

    def test_deployment_rejects_out_of_range_client(self):
        config = abusive_config()
        with pytest.raises(ValueError):
            Deployment(
                config,
                workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=1.0),
                malicious_client_specs=[MaliciousClientSpec(client=9)],
            )

    def test_deployment_rejects_duplicate_specs_for_one_client(self):
        config = abusive_config()
        with pytest.raises(ValueError):
            Deployment(
                config,
                workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=1.0),
                malicious_client_specs=[
                    MaliciousClientSpec(client=3, behaviour=CLIENT_WATERMARK_ABUSE),
                    MaliciousClientSpec(client=3, behaviour=CLIENT_DUPLICATE_FLOOD),
                ],
            )

    def test_harness_builds_abusive_subclass(self):
        config = abusive_config()
        deployment = Deployment(
            config,
            workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=1.0),
            malicious_client_specs=[MaliciousClientSpec(client=3)],
        )
        assert isinstance(deployment.clients[3], AbusiveClient)
        assert not isinstance(deployment.clients[0], AbusiveClient)
        assert deployment.injector.malicious_clients() == (3,)
        assert deployment.injector.abusive_client_for(3) is deployment.clients[3]


class TestWatermarkAbuse:
    def test_far_out_rejected_gaps_stall_only_the_abuser(self):
        config = abusive_config()
        specs = abusive_clients(1, 6, behaviour=CLIENT_WATERMARK_ABUSE)
        deployment, result = run_abusive(config, specs)
        report = result.report
        abuser = specs[0].client
        stats = report.client_abuse["abusers"][abuser]
        per_client = report.client_abuse["per_client"]
        # The attack ran: far-out timestamps and deliberate gaps were sent...
        assert stats["out_of_window_sent"] > 0 and stats["gaps_left"] > 0
        # ...every far-out submission was rejected at the watermark window
        # (each one hits all nodes at least once, so counts dominate sends)...
        assert (
            per_client[abuser]["outside_watermarks"] >= stats["out_of_window_sent"]
        )
        # ...the gaps pin the abuser's own low watermark inside the window...
        for node in result.nodes:
            assert node.watermarks.low_watermark(abuser) < config.client_watermark_window
        # ...while correct clients advance and complete everything.
        for client in correct_clients(result, specs):
            assert client.requests_completed == client.requests_submitted
            assert result.nodes[0].watermarks.low_watermark(client.client_id) > 0
        assert prefixes_identical(result.nodes)

    def test_delayed_start_behaves_honestly_first(self):
        config = abusive_config()
        spec = MaliciousClientSpec(
            client=5, behaviour=CLIENT_WATERMARK_ABUSE, start_time=4.0
        )
        deployment, result = run_abusive(config, [spec], duration=8.0)
        abuser = deployment.clients[5]
        assert abuser.abuse_active
        assert abuser.out_of_window_sent > 0
        # Honest-phase submissions before t=4 completed like anyone's.
        assert abuser.requests_completed > 0
        assert prefixes_identical(result.nodes)

    def test_out_of_order_buffers_bounded_and_pruned(self):
        """Gap-leavers cannot inflate node memory beyond the window."""
        config = abusive_config(window=128)
        specs = abusive_clients(1, 6, behaviour=CLIENT_WATERMARK_ABUSE)
        deployment, result = run_abusive(config, specs)
        for node in result.nodes:
            # Only clients with an open gap may hold a buffer, and no buffer
            # can outgrow the window (the window rejects anything beyond).
            assert node.watermarks.tracked_gap_clients() <= len(specs)
            assert node.watermarks.out_of_order_entries() <= 128


class TestDuplicateFlood:
    @pytest.mark.parametrize("flush_interval", [0.0, 0.02], ids=["unbatched", "batched"])
    def test_flood_absorbed_without_double_delivery(self, flush_interval):
        config = abusive_config()
        specs = abusive_clients(
            1, 6, behaviour=CLIENT_DUPLICATE_FLOOD, flood_factor=4
        )
        deployment, result = run_abusive(
            config, specs, batch_flush_interval=flush_interval
        )
        report = result.report
        abuser = specs[0].client
        stats = report.client_abuse["abusers"][abuser]
        assert stats["duplicates_sent"] > 0
        # The nodes absorbed and counted the flood...
        assert report.client_abuse["per_client"][abuser]["duplicates"] > 0
        # ...and no request was delivered twice at any node.
        for node in result.nodes:
            rids = [
                request.rid
                for sn in range(node.log.first_undelivered)
                for entry in [node.log.entry(sn)]
                if isinstance(entry, Batch)
                for request in entry.requests
            ]
            assert len(rids) == len(set(rids))
        # The flooder's own (valid) requests still complete — flooding buys
        # nothing and costs nothing but bandwidth.
        assert stats["requests_completed"] == stats["requests_submitted"]
        for client in correct_clients(result, specs):
            assert client.requests_completed == client.requests_submitted
        assert prefixes_identical(result.nodes)

    def test_flood_only_adds_traffic(self):
        """Flooding inflates wire messages, never what anyone delivers."""
        clean_dep, clean = run_abusive(abusive_config(), [])
        specs = abusive_clients(1, 6, behaviour=CLIENT_DUPLICATE_FLOOD, flood_factor=5)
        noisy_dep, noisy = run_abusive(abusive_config(), specs)
        assert (
            noisy_dep.network.stats.messages_sent
            > clean_dep.network.stats.messages_sent
        )
        assert prefixes_identical(noisy.nodes)


class TestBucketBias:
    def test_bias_bounded_by_window_and_hash(self):
        config = abusive_config(window=512)
        target = 3
        specs = [
            MaliciousClientSpec(
                client=5, behaviour=CLIENT_BUCKET_BIAS, target_bucket=target
            )
        ]
        deployment, result = run_abusive(config, specs, duration=10.0)
        report = result.report
        stats = report.client_abuse["abusers"][5]
        assert stats["biased_sent"] > 0
        # Only ~1/|B| of the window's timestamps map to the target bucket —
        # after that the skipped timestamps wedge the abuser out of the
        # window, so the accepted bias is bounded by the exact per-(client,
        # target) capacity the window leaves (≈ window / |B|).
        from repro.sim.client_adversary import bias_capacity

        bound = bias_capacity(
            5, target, config.client_watermark_window, config.num_buckets
        )
        assert 0 < stats["requests_completed"] <= bound
        assert bound <= config.client_watermark_window // config.num_buckets + 8
        # The overflow was rejected at the watermark window and counted.
        assert report.client_abuse["per_client"][5]["outside_watermarks"] > 0
        # Correct clients — including any mapping to the target bucket — are
        # unharmed.
        for client in correct_clients(result, specs):
            assert client.requests_completed == client.requests_submitted
        assert prefixes_identical(result.nodes)

    def test_payload_cannot_move_a_request_between_buckets(self):
        """The bucket hash covers c||t only: payload crafting is a no-op."""
        from repro.core.buckets import bucket_of

        rid = RequestId(client=1, timestamp=7)
        assert bucket_of(rid, 64) == bucket_of(rid, 64)
        # bucket_of takes no payload at all — the strongest statement of
        # Section 3.7's payload exclusion; the mixing value is fixed at
        # RequestId construction.
        assert rid._mix == RequestId(client=1, timestamp=7)._mix


class TestForgedSignatures:
    def test_forgeries_rejected_and_attributed_to_victim(self):
        config = abusive_config()
        specs = abusive_clients(1, 6, behaviour=CLIENT_FORGED_SIGNATURE)
        victim = specs[0].victim
        deployment, result = run_abusive(config, specs)
        report = result.report
        stats = report.client_abuse["abusers"][specs[0].client]
        assert stats["forged_sent"] > 0
        # Every forgery was rejected at the signature check, attributed to
        # the claimed (victim) identity — the only one nodes can observe.
        per_client = report.client_abuse["per_client"]
        assert per_client[victim]["bad_signature"] >= stats["forged_sent"]
        # The impersonated victim is unharmed: its own requests complete.
        victim_client = result.clients[victim]
        assert victim_client.requests_completed == victim_client.requests_submitted
        # Nothing forged was ever delivered: no forged timestamp (descending
        # from the window top) appears in any node's delivered filter or log.
        assert prefixes_identical(result.nodes)
        for node in result.nodes:
            assert node.validator.stats.bad_signature >= stats["forged_sent"]


class TestMixedAbuseAndReplicaFaults:
    def test_two_behaviours_plus_batching(self):
        """Several abusive clients with different behaviours compose."""
        config = abusive_config()
        specs = [
            MaliciousClientSpec(client=5, behaviour=CLIENT_WATERMARK_ABUSE),
            MaliciousClientSpec(client=4, behaviour=CLIENT_DUPLICATE_FLOOD),
        ]
        deployment, result = run_abusive(
            config, specs, batch_flush_interval=0.02
        )
        report = result.report
        assert report.client_abuse["adversaries"] == {
            5: CLIENT_WATERMARK_ABUSE,
            4: CLIENT_DUPLICATE_FLOOD,
        }
        assert report.client_abuse["per_client"][5]["outside_watermarks"] > 0
        assert report.client_abuse["per_client"][4]["duplicates"] > 0
        for client in correct_clients(result, specs):
            assert client.requests_completed == client.requests_submitted
        assert prefixes_identical(result.nodes)

    def test_abusive_client_with_crashed_node(self):
        """Client abuse composes with a replica crash fault."""
        from repro.sim.faults import CrashSpec

        config = abusive_config(seed=11)
        specs = abusive_clients(1, 6, behaviour=CLIENT_WATERMARK_ABUSE)
        deployment = Deployment(
            config,
            workload=WorkloadConfig(num_clients=6, total_rate=300.0, duration=10.0),
            malicious_client_specs=specs,
            crash_specs=[CrashSpec(node=3, trigger="at-time", time=3.0)],
            drain_time=12.0,
        )
        result = deployment.run()
        live = [node for node in result.nodes if not node.crashed]
        assert prefixes_identical(live)
        for client in correct_clients(result, specs):
            assert client.requests_completed == client.requests_submitted


class TestBoundedClientState:
    def test_delivered_filter_and_signature_cache_are_collected(self):
        """Long-run growth of per-client node state is bounded by GC at
        epoch transitions (the PR's unbounded-growth bugfix)."""
        config = abusive_config()
        deployment, result = run_abusive(
            abusive_config(), [], duration=15.0, rate=400.0
        )
        for node in result.nodes:
            delivered_total = node.delivered_count()
            assert delivered_total > 0
            # Without GC both collections would hold every delivered id.
            assert node.client_state_gc_entries > 0
            assert len(node.buckets.delivered) < delivered_total
            assert node.validator.verified_cache_size() < delivered_total
            # Everything below each client's low watermark is gone.
            for client in result.clients:
                low = node.watermarks.low_watermark(client.client_id)
                for ts in range(low):
                    rid = RequestId(client=client.client_id, timestamp=ts)
                    assert not node.buckets.is_delivered(rid)

    def test_recovery_replay_also_collects_client_state(self):
        """A restarted node must not re-retain the whole pre-crash delivered
        history: the recovery fast-forward applies the same watermark GC as
        live epoch transitions (regression: replay used to skip it)."""
        from repro.sim.faults import CrashSpec, RestartSpec

        config = abusive_config(seed=11)
        deployment = Deployment(
            config,
            workload=WorkloadConfig(num_clients=6, total_rate=400.0, duration=14.0),
            crash_specs=[CrashSpec(node=1, trigger="at-time", time=8.0)],
            restart_specs=[RestartSpec(node=1, time=11.0)],
            drain_time=12.0,
        )
        result = deployment.run()
        restarted = result.nodes[1]
        assert restarted.delivered_count() > 0
        # The replayed prefix completed epochs, so recovery itself must have
        # collected the watermark-covered ranges out of the rebuilt filters.
        assert restarted.client_state_gc_entries > 0
        assert len(restarted.buckets.delivered) < restarted.delivered_count()

    def test_gcd_resubmission_still_reacked_not_readded(self):
        """A resubmission of a delivered-and-collected request must be
        re-acknowledged from the watermark, never re-enter a queue."""
        config = abusive_config()
        deployment, result = run_abusive(config, [], duration=8.0)
        node = result.nodes[0]
        client = result.clients[0]
        low = node.watermarks.low_watermark(client.client_id)
        assert low > 0
        rid = RequestId(client=client.client_id, timestamp=0)
        assert not node.buckets.is_delivered(rid)  # GC'd
        duplicates_before = node.duplicate_requests.get(client.client_id, 0)
        pending_before = node.pending_requests()
        # Replay the client's very first (delivered, GC'd) request.
        first = next(
            sn_entry
            for sn in range(node.log.first_undelivered)
            for sn_entry in [node.log.entry(sn)]
            if isinstance(sn_entry, Batch)
            and any(r.rid == rid for r in sn_entry.requests)
        )
        request = next(r for r in first.requests if r.rid == rid)
        assert node.submit_request(request) is False
        assert node.pending_requests() == pending_before
        assert node.duplicate_requests[client.client_id] == duplicates_before + 1


class TestScenarios:
    def test_client_abuse_sweep_rows(self):
        rows = client_abuse_sweep(
            behaviours=(CLIENT_WATERMARK_ABUSE, CLIENT_FORGED_SIGNATURE),
            abusive_counts=(0, 2),
            duration=6.0,
            rate=300.0,
        )
        assert [r["behaviour"] for r in rows] == [
            "none",
            CLIENT_WATERMARK_ABUSE,
            CLIENT_FORGED_SIGNATURE,
        ]
        for row in rows:
            assert row["correct_all_complete"], row
            assert row["prefixes_identical"], row
            assert row["abuse_contained"], row
        attacked = [r for r in rows if r["abusive"]]
        assert all(r["rejections_total"] > 0 for r in attacked)

    def test_watermark_stall_row(self):
        row = watermark_stall(duration=6.0, drain_time=8.0)
        assert row["abuser_stalled"]
        assert row["correct_lows_advanced"]
        assert row["correct_all_complete"]
        assert row["prefixes_identical"]
        assert row["out_of_order_bounded"]
        assert row["gc_entries_total"] > 0

    def test_forged_signature_needs_client_signatures(self):
        """Signature-free (Raft CFT) configurations reject the pairing
        instead of silently delivering forgeries, and the sweep skips it."""
        with pytest.raises(ValueError):
            client_abuse_point(
                "raft", behaviour=CLIENT_FORGED_SIGNATURE, num_abusive=1
            )
        rows = client_abuse_sweep(
            protocol="raft",
            behaviours=(CLIENT_DUPLICATE_FLOOD, CLIENT_FORGED_SIGNATURE),
            abusive_counts=(1,),
            duration=5.0,
            rate=300.0,
        )
        assert [r["behaviour"] for r in rows] == [CLIENT_DUPLICATE_FLOOD]

    def test_point_supports_hotstuff(self):
        row = client_abuse_point(
            "hotstuff",
            behaviour=CLIENT_DUPLICATE_FLOOD,
            num_abusive=1,
            duration=6.0,
            drain_time=10.0,
        )
        assert row["correct_all_complete"], row
        assert row["prefixes_identical"], row
        assert row["abuse_contained"], row


class TestClientAbuseSmokeGolden:
    def test_matches_client_abuse_golden_trace(self):
        """The seeded abusive scenario replays bit-identically."""
        figures = client_abuse_smoke.run_smoke()
        assert client_abuse_smoke.semantic_violations(figures) is None
        assert (
            client_abuse_smoke.check_against_golden(
                figures, client_abuse_smoke.golden_path()
            )
            is None
        )

    def test_golden_trace_file_is_well_formed(self):
        golden = json.loads(client_abuse_smoke.golden_path().read_text())
        assert golden["trace_len"] > 0
        assert len(golden["trace_sha256"]) == 64
        assert golden["watermark_rejections"] > 0
        assert golden["forgeries_rejected"] > 0
        assert golden["duplicates_absorbed"] > 0
