"""Integration tests: full ISS deployments over the simulated WAN.

These tests check the SMR properties (Section 2.1) end-to-end: agreement and
totality across nodes, integrity of delivered requests, no-duplication, and
liveness under the configured faults.
"""

import pytest

from repro.core.config import ISSConfig, WorkloadConfig, NetworkConfig
from repro.core.types import is_nil
from repro.harness.runner import Deployment
from repro.workload.faults import epoch_start_crashes


def small_deployment(protocol="pbft", num_nodes=4, rate=200.0, duration=8.0, **config_overrides):
    defaults = dict(
        epoch_length=16,
        max_batch_size=32,
        batch_rate=8.0,
        max_batch_timeout=0.5,
        view_change_timeout=3.0,
        epoch_change_timeout=3.0,
    )
    if protocol == "hotstuff":
        defaults.update(batch_rate=None, min_batch_timeout=0.1, max_batch_timeout=0.0, min_segment_size=4)
    if protocol == "raft":
        defaults.update(byzantine=False, client_signatures=False, min_segment_size=4,
                        election_timeout=(3.0, 6.0))
    defaults.update(config_overrides)
    config = ISSConfig(num_nodes=num_nodes, protocol=protocol, **defaults)
    workload = WorkloadConfig(num_clients=4, total_rate=rate, duration=duration, payload_size=128)
    return Deployment(config, workload=workload, drain_time=8.0)


def logs_of(result):
    return {node.node_id: node.log for node in result.nodes if not node.crashed}


def assert_smr_agreement(result):
    """SMR2/SMR3 over the delivered prefix of every pair of correct nodes."""
    logs = logs_of(result)
    reference_node = min(logs)
    reference = logs[reference_node]
    for node_id, log in logs.items():
        common = min(reference.first_undelivered, log.first_undelivered)
        for sn in range(common):
            a, b = reference.entry(sn), log.entry(sn)
            if is_nil(a) or is_nil(b):
                assert is_nil(a) == is_nil(b), f"nil mismatch at {sn}"
            else:
                assert a.digest() == b.digest(), f"batch mismatch at {sn}"


def assert_no_duplication(result):
    """No request occupies two positions in any node's delivered log."""
    for node in result.nodes:
        if node.crashed:
            continue
        seen = set()
        for sn in range(node.log.first_undelivered):
            entry = node.log.entry(sn)
            if is_nil(entry):
                continue
            for request in entry.requests:
                assert request.rid not in seen, f"request {request.rid} delivered twice"
                seen.add(request.rid)


class TestFaultFreePBFT:
    @pytest.fixture(scope="class")
    def result(self):
        return small_deployment("pbft").run()

    def test_all_submitted_requests_delivered(self, result):
        assert result.report.completed == result.report.submitted > 0

    def test_agreement_across_nodes(self, result):
        assert_smr_agreement(result)

    def test_no_duplication(self, result):
        assert_no_duplication(result)

    def test_all_nodes_advance_epochs(self, result):
        assert all(node.epochs_completed >= 2 for node in result.nodes)

    def test_no_nil_entries_without_faults(self, result):
        assert all(node.nil_committed == 0 for node in result.nodes)

    def test_latency_reasonable(self, result):
        assert 0 < result.report.latency.mean < 5.0

    def test_integrity_only_submitted_requests_delivered(self, result):
        submitted = {r for c in result.clients for r in range(c.requests_submitted)}
        for node in result.nodes:
            for sn in range(node.log.first_undelivered):
                entry = node.log.entry(sn)
                if is_nil(entry):
                    continue
                for request in entry.requests:
                    assert request.rid.client < len(result.clients)
                    assert request.rid.timestamp < result.clients[request.rid.client].requests_submitted

    def test_checkpoints_garbage_collect_instances(self, result):
        node = result.nodes[0]
        # Old epochs' instances are gone; only the current (and possibly the
        # previous, not-yet-checkpointed) epoch's instances remain.
        assert node.orderer.instances_stopped > 0
        active_epochs = {inst.segment.epoch for inst in node.orderer.active_instances()}
        assert all(e >= node.current_epoch - 1 for e in active_epochs)


class TestFaultFreeHotStuff:
    @pytest.fixture(scope="class")
    def result(self):
        return small_deployment("hotstuff").run()

    def test_delivery_and_agreement(self, result):
        assert result.report.completed == result.report.submitted > 0
        assert_smr_agreement(result)
        assert_no_duplication(result)


class TestFaultFreeRaft:
    @pytest.fixture(scope="class")
    def result(self):
        return small_deployment("raft").run()

    def test_delivery_and_agreement(self, result):
        assert result.report.completed == result.report.submitted > 0
        assert_smr_agreement(result)
        assert_no_duplication(result)


class TestConsensusSBDeployment:
    def test_reference_implementation_delivers(self):
        result = small_deployment("consensus", rate=100.0, duration=6.0).run()
        assert result.report.completed == result.report.submitted > 0
        assert_smr_agreement(result)


class TestCrashFaultIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        deployment = small_deployment("pbft", rate=200.0, duration=20.0)
        deployment.injector.schedule_all(epoch_start_crashes(1, 4, epoch=0))
        deployment.injector.on_crash = deployment._on_node_crash
        return deployment.run()

    def test_liveness_despite_crash(self, result):
        assert result.report.completed == result.report.submitted > 0

    def test_agreement_despite_crash(self, result):
        assert_smr_agreement(result)
        assert_no_duplication(result)

    def test_nil_entries_recorded_for_crashed_leader(self, result):
        alive = [n for n in result.nodes if not n.crashed]
        assert any(n.nil_committed > 0 for n in alive)

    def test_blacklist_removes_crashed_leader(self, result):
        alive = [n for n in result.nodes if not n.crashed][0]
        crashed_id = [n.node_id for n in result.nodes if n.crashed][0]
        later_epoch = alive.current_epoch
        assert crashed_id not in alive.manager.leaders_for(later_epoch)

    def test_resurrection_or_delivery_of_all_client_requests(self, result):
        """Every submitted request is eventually delivered (none lost to the crash)."""
        assert result.report.completed == result.report.submitted
