"""Tests for the chained-HotStuff Sequenced-Broadcast implementation."""

import pytest

from repro.core.types import NIL, SegmentDescriptor, is_nil
from repro.hotstuff.hotstuff import HotStuffSB
from repro.hotstuff.messages import GENESIS_QC, Block, Proposal
from tests.conftest import SBTestBed


def make_bed(num_nodes=4, leader=0, seq_nrs=(0, 1, 2, 3), **kwargs) -> SBTestBed:
    segment = SegmentDescriptor(epoch=0, leader=leader, seq_nrs=tuple(seq_nrs), buckets=(0,))
    return SBTestBed(num_nodes, lambda ctx: HotStuffSB(ctx), segment=segment, **kwargs)


class TestFaultFree:
    def test_all_nodes_deliver_all_sequence_numbers(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=10.0)
        bed.assert_termination()
        bed.assert_agreement()

    def test_pipeline_flush_commits_last_block(self):
        """The three dummy blocks let the final real sequence number commit."""
        bed = make_bed(seq_nrs=(0,))
        bed.feed_requests(0, 4)
        bed.start_all()
        bed.run(until=10.0)
        bed.assert_termination()
        assert not is_nil(bed.delivered[1][0])

    def test_values_match_leader_batches(self):
        bed = make_bed()
        fed = bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=10.0)
        delivered = [
            request.rid
            for sn in bed.segment.seq_nrs
            for request in bed.delivered[2][sn].requests
        ]
        assert delivered == [r.rid for r in fed[:8]]

    def test_no_nil_without_faults(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=10.0)
        for node in bed.correct_nodes():
            assert not any(is_nil(v) for v in bed.delivered[node].values())

    def test_proposals_are_serialised_behind_certificates(self):
        """Chained HotStuff is latency-bound: one proposal per QC round trip."""
        bed = make_bed()
        bed.feed_requests(0, 100)
        bed.start_all()
        bed.run(until=0.01)  # far less than one WAN round trip
        assert len(bed.proposed[0]) <= 1

    def test_different_leader(self):
        bed = make_bed(leader=3)
        bed.feed_requests(3, 12)
        bed.start_all()
        bed.run(until=10.0)
        bed.assert_termination()
        bed.assert_agreement()


class TestLeaderFailure:
    def test_crashed_leader_yields_nil_for_all(self):
        bed = make_bed()
        bed.feed_requests(0, 8)
        bed.crash(0)
        bed.start([1, 2, 3])
        bed.run(until=60.0)
        bed.assert_termination()
        bed.assert_agreement()
        for node in (1, 2, 3):
            assert all(is_nil(v) for v in bed.delivered[node].values())

    def test_round_change_recorded_after_crash(self):
        bed = make_bed()
        bed.crash(0)
        bed.start([1, 2, 3])
        bed.run(until=60.0)
        assert any(inst.rounds_changed > 0 for inst in bed.instances[1:])

    def test_mid_segment_crash_preserves_committed_prefix(self):
        bed = make_bed(seq_nrs=(0, 1, 2, 3, 4, 5))
        bed.feed_requests(0, 24)
        bed.start_all()
        bed.run(until=1.0)
        committed_before = dict(bed.delivered[1])
        bed.crash(0)
        bed.run(until=80.0)
        bed.assert_termination()
        bed.assert_agreement()
        for sn, value in committed_before.items():
            if not is_nil(value):
                assert bed.delivered[1][sn].digest() == value.digest()


class TestBlockValidation:
    def test_follower_rejects_batch_from_non_segment_leader(self):
        bed = make_bed()
        bed.start_all()
        bed.run(until=0.1)
        instance = bed.instances[1]
        from repro.core.types import Batch
        from tests.conftest import make_request

        rogue_block = Block(
            view=0,
            round=0,
            sn=0,
            value=Batch.of([make_request()]),
            parent_digest=GENESIS_QC.block_digest,
            justify=GENESIS_QC,
        )
        # Node 2 (not the segment leader) proposes a real batch: rejected.
        assert not instance._validate_block(2, rogue_block)

    def test_duplicate_sequence_number_in_chain_rejected(self):
        bed = make_bed()
        bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=10.0)
        instance = bed.instances[1]
        # Craft a block re-using an already-committed sequence number.
        block = Block(
            view=99,
            round=0,
            sn=bed.segment.seq_nrs[0],
            value=NIL,
            parent_digest=instance._high_qc.block_digest,
            justify=instance._high_qc,
        )
        assert not instance._validate_block(0, block)

    def test_quorum_certificate_verification(self):
        bed = make_bed()
        bed.feed_requests(0, 4)
        bed.start_all()
        bed.run(until=10.0)
        instance = bed.instances[0]
        qc = instance._high_qc
        assert qc.signature is not None
        assert instance._threshold.verify(qc.signature, qc.block_digest)
