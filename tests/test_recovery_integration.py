"""Crash→restart→catch-up integration tests (the storage subsystem's
acceptance criteria).

A node is crashed mid-epoch, stays down long enough for the live cluster to
order **at least two more epochs**, and is then restarted from its durable
storage.  For each SB protocol (PBFT, HotStuff, Raft) the restarted node
must

* recover its pre-crash state via WAL replay (plus snapshot, when it
  crashed after a stable checkpoint),
* fetch everything ordered while it was down via state transfer,
* catch up to the cluster frontier (recorded ``time_to_caught_up`` ≥ 0), and
* thereafter hold a delivered sequence identical to a never-crashed peer's.

Recovery is also seed-deterministic: the same seed must reproduce the same
recovery record and delivered trace, pinned across processes by
``tests/data/golden_trace_recovery.json`` (see :mod:`repro.recovery_smoke`).
"""

import json

import pytest

from repro.core.config import (
    NetworkConfig,
    WorkloadConfig,
    PROTOCOL_HOTSTUFF,
    PROTOCOL_PBFT,
    PROTOCOL_RAFT,
)
from repro.harness.runner import Deployment
from repro.harness.scenarios import (
    PAYLOAD_BYTES,
    SCALED_BANDWIDTH_BPS,
    delivered_prefix_matches,
    iss_config,
)
from repro.recovery_smoke import (
    check_against_golden,
    delivered_trace,
    golden_path,
    run_smoke,
)
from repro.sim.faults import CrashSpec, RestartSpec

VICTIM = 1

#: Per-protocol (crash_time, restart_time, duration): the downtime is sized
#: so the live cluster completes ≥ 2 epochs while the victim is away (epoch
#: cadence differs per protocol), asserted inside the test.
TIMINGS = {
    PROTOCOL_PBFT: (10.0, 20.0, 32.0),
    PROTOCOL_HOTSTUFF: (10.0, 24.0, 36.0),
    PROTOCOL_RAFT: (8.0, 24.0, 36.0),
}


def build_crash_restart_deployment(protocol, crash_time, restart_time, duration, seed=11):
    config = iss_config(protocol, 4, random_seed=seed)
    network_config = NetworkConfig(bandwidth_bps=SCALED_BANDWIDTH_BPS)
    workload = WorkloadConfig(
        num_clients=8, total_rate=800.0, duration=duration, payload_size=PAYLOAD_BYTES
    )
    return Deployment(
        config,
        network_config=network_config,
        workload=workload,
        crash_specs=[CrashSpec(node=VICTIM, trigger="at-time", time=crash_time)],
        restart_specs=[RestartSpec(node=VICTIM, time=restart_time)],
        recovery_poll=0.25,
    )


#: One crash-restart run per protocol, shared by every test that inspects it
#: (the runs are tens of virtual seconds; re-running them per test would
#: double the suite's wall time for identical — deterministic — results).
_RUNS = {}


def crash_restart_run(protocol):
    if protocol in _RUNS:
        return _RUNS[protocol]
    crash_time, restart_time, duration = TIMINGS[protocol]
    deployment = build_crash_restart_deployment(
        protocol, crash_time, restart_time, duration
    )

    # Snapshot the live peers' epoch frontier at crash and restart time, to
    # assert the victim really missed ≥ 2 epochs of progress.
    peer_epochs = {}

    def snap(tag):
        peer_epochs[tag] = max(
            node.current_epoch
            for node in deployment.nodes
            if node.node_id != VICTIM
        )

    deployment.sim.schedule_at(crash_time, lambda: snap("crash"))
    deployment.sim.schedule_at(restart_time - 1e-6, lambda: snap("restart"))

    result = deployment.run()
    _RUNS[protocol] = (deployment, result, peer_epochs)
    return _RUNS[protocol]


class TestCrashRestartRecovery:
    @pytest.mark.parametrize(
        "protocol", [PROTOCOL_PBFT, PROTOCOL_HOTSTUFF, PROTOCOL_RAFT]
    )
    def test_restarted_node_recovers_and_matches_peers(self, protocol):
        crash_time, restart_time, _duration = TIMINGS[protocol]
        _deployment, result, peer_epochs = crash_restart_run(protocol)
        report = result.report

        epochs_missed = peer_epochs["restart"] - peer_epochs["crash"]
        assert epochs_missed >= 2, (
            f"test setup: cluster only advanced {epochs_missed} epochs "
            f"during the downtime"
        )

        assert len(report.recoveries) == 1
        recovery = report.recoveries[0]
        assert recovery["node"] == float(VICTIM)
        # WAL replay recovered the pre-crash commits...
        assert recovery["wal_entries_replayed"] > 0
        # ...state transfer fetched what was ordered while down...
        assert recovery["state_transfer_entries"] > 0
        assert recovery["state_transfer_bytes"] > 0
        # ...and the node reached the cluster frontier.
        assert recovery["time_to_caught_up"] >= 0.0
        assert recovery["downtime"] == pytest.approx(restart_time - crash_time)

        victim = result.nodes[VICTIM]
        peers = [node for node in result.nodes if node.node_id != VICTIM]
        # Identical committed sequence: same digest at every position shared
        # with every peer, and a delivered frontier no shorter than the
        # slowest peer's (peers may differ by a few in-flight positions at
        # the instant the run stops).
        for peer in peers:
            assert delivered_prefix_matches(peer, victim)
        slowest = min(peer.log.first_undelivered for peer in peers)
        assert victim.log.first_undelivered >= slowest
        reference = min(peers, key=lambda peer: peer.log.first_undelivered)
        assert delivered_trace(victim)[:slowest] == delivered_trace(reference)[:slowest]

    def test_snapshot_and_certificates_used_when_crash_follows_checkpoint(self):
        """Crashing after the first stable checkpoint exercises snapshot
        apply and certificate restoration, not just WAL replay."""
        _deployment, result, _peer_epochs = crash_restart_run(PROTOCOL_PBFT)
        recovery = result.report.recoveries[0]
        assert recovery["snapshot_entries"] > 0
        assert recovery["certificates_restored"] > 0
        assert recovery["resume_epoch"] > 0
        # The shared storage object shows the compaction trail.
        stats = result.storages[VICTIM].stats()
        assert stats["compactions"] > 0
        assert stats["wal_truncated_total"] > 0

    def test_recovery_is_seed_deterministic(self):
        runs = []
        for _ in range(2):
            deployment = build_crash_restart_deployment(PROTOCOL_PBFT, 6.0, 14.0, 24.0)
            result = deployment.run()
            runs.append(
                (
                    result.report.recoveries,
                    result.report.extra,
                    delivered_trace(result.nodes[VICTIM]),
                )
            )
        assert runs[0] == runs[1]

    def test_matches_recovery_golden_trace(self):
        """Same seed ⇒ same recovery, pinned across processes and machines
        by the checked-in golden trace."""
        figures = run_smoke()
        assert figures["caught_up"]
        assert figures["prefix_matches"]
        assert check_against_golden(figures, golden_path()) is None

    def test_golden_trace_file_is_well_formed(self):
        golden = json.loads(golden_path().read_text())
        assert golden["recovery"]["time_to_caught_up"] >= 0.0
        assert golden["trace_len"] > 0
        assert len(golden["trace_sha256"]) == 64


class TestRestartEdges:
    def test_mirbft_baseline_survives_restart(self):
        """The baseline node class restarts through the same machinery."""
        from repro.baselines.mirbft import MirBFTNode

        config = iss_config(PROTOCOL_PBFT, 4, random_seed=5)
        deployment = Deployment(
            config,
            network_config=NetworkConfig(bandwidth_bps=SCALED_BANDWIDTH_BPS),
            workload=WorkloadConfig(
                num_clients=8, total_rate=600.0, duration=24.0,
                payload_size=PAYLOAD_BYTES,
            ),
            crash_specs=[CrashSpec(node=VICTIM, trigger="at-time", time=6.0)],
            restart_specs=[RestartSpec(node=VICTIM, time=14.0)],
            node_class=MirBFTNode,
            recovery_poll=0.25,
        )
        result = deployment.run()
        assert len(result.report.recoveries) == 1
        victim = result.nodes[VICTIM]
        reference = next(n for n in result.nodes if n.node_id != VICTIM)
        assert delivered_prefix_matches(reference, victim)
        # The replacement incarnation delivered beyond the replayed prefix.
        assert victim.log.first_undelivered > 0

    def test_restart_without_prior_crash_is_noop(self):
        deployment = build_crash_restart_deployment(PROTOCOL_PBFT, 6.0, 14.0, 20.0)
        deployment.injector.restart_now(0)  # node 0 never crashed
        assert deployment.injector.restarted_nodes() == ()

    def test_storage_disabled_by_default_without_restarts(self):
        config = iss_config(PROTOCOL_PBFT, 4, random_seed=5)
        deployment = Deployment(
            config,
            workload=WorkloadConfig(num_clients=2, total_rate=50.0, duration=1.0),
        )
        assert deployment.storages == {}
        assert all(node.storage is None for node in deployment.nodes)


class TestRecoveryWithDeadFirstResponder:
    def test_recovery_succeeds_when_first_probed_peer_is_down(self):
        """The staggered catch-up probe starts at the lowest-id peer; with
        that peer permanently crashed, the escalation chain must still
        recover the restarted node from the remaining peers."""
        config = iss_config(PROTOCOL_PBFT, 5, random_seed=11)
        deployment = Deployment(
            config,
            network_config=NetworkConfig(bandwidth_bps=SCALED_BANDWIDTH_BPS),
            workload=WorkloadConfig(
                num_clients=8, total_rate=800.0, duration=34.0,
                payload_size=PAYLOAD_BYTES,
            ),
            crash_specs=[
                # Node 0 (the restarted node's first probe target) stays down.
                CrashSpec(node=0, trigger="at-time", time=2.0),
                CrashSpec(node=2, trigger="at-time", time=10.0),
            ],
            restart_specs=[RestartSpec(node=2, time=20.0)],
            recovery_poll=0.25,
        )
        result = deployment.run()
        report = result.report
        assert report.recoveries and report.recoveries[0]["time_to_caught_up"] >= 0.0
        restarted = result.nodes[2]
        # The dead first responder forced at least one escalation.
        assert restarted.state_transfer.probe_escalations >= 1
        reference = result.nodes[1]
        assert delivered_prefix_matches(reference, restarted)
        assert restarted.delivered_count() > 0
