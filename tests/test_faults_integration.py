"""Integration tests for fault scenarios: crashes, stragglers, policies, state transfer."""

import pytest

from repro.core.config import ISSConfig, WorkloadConfig, POLICY_BACKOFF, POLICY_SIMPLE
from repro.core.types import is_nil
from repro.harness.runner import Deployment
from repro.obs import ObsConfig
from repro.workload.faults import epoch_end_crashes, epoch_start_crashes, stragglers


def build(protocol="pbft", num_nodes=4, rate=200.0, duration=20.0, crash_specs=(), straggler_specs=(), obs=None, **overrides):
    defaults = dict(
        epoch_length=16,
        max_batch_size=32,
        batch_rate=8.0,
        max_batch_timeout=0.5,
        view_change_timeout=3.0,
        epoch_change_timeout=3.0,
    )
    defaults.update(overrides)
    config = ISSConfig(num_nodes=num_nodes, protocol=protocol, **defaults)
    workload = WorkloadConfig(num_clients=4, total_rate=rate, duration=duration, payload_size=128)
    return Deployment(
        config,
        workload=workload,
        crash_specs=crash_specs,
        straggler_specs=straggler_specs,
        drain_time=10.0,
        obs=obs,
    )


class TestEpochStartVsEpochEndCrash:
    @pytest.fixture(scope="class")
    def reports(self):
        fault_free = build().run().report
        start = build(crash_specs=epoch_start_crashes(1, 4, epoch=0)).run().report
        end = build(crash_specs=epoch_end_crashes(1, 4, epoch=0)).run().report
        return fault_free, start, end

    def test_liveness_under_both_crash_kinds(self, reports):
        _, start, end = reports
        assert start.completed == start.submitted > 0
        assert end.completed == end.submitted > 0

    def test_crashes_increase_latency(self, reports):
        fault_free, start, end = reports
        assert start.latency.mean > fault_free.latency.mean
        assert end.latency.mean > fault_free.latency.mean

    def test_epoch_end_crash_hurts_latency_more(self, reports):
        """The paper: epoch-end failures delay all buckets, epoch-start only the
        faulty leader's (Section 6.4.1, Figure 8)."""
        _, start, end = reports
        assert end.latency.p95 >= start.latency.p95


class TestStragglers:
    @pytest.fixture(scope="class")
    def reports(self):
        clean = build(duration=25.0).run().report
        slow = build(duration=25.0, straggler_specs=stragglers(1, 4, delay=2.0)).run().report
        return clean, slow

    def test_straggler_reduces_throughput(self, reports):
        clean, slow = reports
        assert slow.throughput < 0.8 * clean.throughput

    def test_straggler_inflates_latency(self, reports):
        clean, slow = reports
        assert slow.latency.mean > 2 * clean.latency.mean

    def test_straggler_is_not_suspected(self, reports):
        """The straggler stays below the view-change timeout, so no ⊥ entries
        appear in the log (it is Byzantine but not quiet)."""
        deployment = build(duration=15.0, straggler_specs=stragglers(1, 4, delay=2.0))
        result = deployment.run()
        assert all(node.nil_committed == 0 for node in result.nodes)

    def test_spiky_delivery_pattern(self):
        """Delivery progresses in bursts gated by the slowest leader (Figure 12)."""
        result = build(
            duration=20.0,
            rate=300.0,
            straggler_specs=stragglers(1, 4, delay=2.0),
            obs=ObsConfig(metrics_interval=1.0),
        ).run()
        timeline = [count for _, count in result.report.throughput_timeline]
        idle = sum(1 for v in timeline if v == 0)
        busy = sum(1 for v in timeline if v > 0)
        assert idle > 0 and busy > 0


class TestLeaderPolicies:
    def test_simple_policy_keeps_crashed_node_in_leaderset(self):
        result = build(
            leader_policy=POLICY_SIMPLE,
            crash_specs=epoch_start_crashes(1, 4, epoch=0),
            duration=25.0,
        ).run()
        alive = [n for n in result.nodes if not n.crashed][0]
        crashed = [n.node_id for n in result.nodes if n.crashed][0]
        assert crashed in alive.manager.leaders_for(alive.current_epoch)
        # Every epoch pays for the crashed leader: ⊥ entries keep appearing.
        assert alive.nil_committed >= alive.epochs_completed

    def test_backoff_policy_rebans_crashed_node(self):
        result = build(
            leader_policy=POLICY_BACKOFF,
            backoff_ban_period=2,
            crash_specs=epoch_start_crashes(1, 4, epoch=0),
            duration=30.0,
        ).run()
        alive = [n for n in result.nodes if not n.crashed][0]
        crashed = [n.node_id for n in result.nodes if n.crashed][0]
        excluded_epochs = [
            e for e in range(alive.current_epoch) if crashed not in alive.manager.leaders_for(e)
        ]
        included_epochs = [
            e for e in range(1, alive.current_epoch) if crashed in alive.manager.leaders_for(e)
        ]
        # BACKOFF bans and periodically re-includes the crashed node.
        assert excluded_epochs
        assert included_epochs

    def test_blacklist_policy_latency_beats_simple(self):
        simple = build(
            leader_policy=POLICY_SIMPLE,
            crash_specs=epoch_start_crashes(1, 4, epoch=0),
            duration=30.0,
        ).run().report
        blacklist = build(
            crash_specs=epoch_start_crashes(1, 4, epoch=0),
            duration=30.0,
        ).run().report
        assert blacklist.latency.mean < simple.latency.mean


class TestStateTransfer:
    def test_lagging_node_catches_up_via_state_transfer(self):
        """A node partitioned for several epochs catches up from checkpoints."""
        deployment = build(duration=25.0, rate=200.0)
        # Partition node 3 from everyone between t=2 and t=14 (several epochs).
        deployment.sim.schedule(2.0, lambda: deployment.network.partition([[0, 1, 2], [3]]))
        deployment.sim.schedule(14.0, deployment.network.heal_partition)
        result = deployment.run()
        lagging = result.nodes[3]
        leader_log = result.nodes[0].log
        assert lagging.state_transfer.transfers_completed > 0
        # The lagging node holds the same prefix as the others.
        common = min(lagging.log.first_undelivered, leader_log.first_undelivered)
        assert common > 0
        for sn in range(common):
            a, b = lagging.log.entry(sn), leader_log.entry(sn)
            if is_nil(a) or is_nil(b):
                assert is_nil(a) == is_nil(b)
            else:
                assert a.digest() == b.digest()
