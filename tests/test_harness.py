"""Tests for the experiment harness (Deployment, runner helpers, scenarios)."""

import pytest

from repro.core.config import ISSConfig, NetworkConfig, WorkloadConfig
from repro.harness import scenarios
from repro.harness.runner import Deployment, find_peak_throughput, run_experiment
from repro.metrics.collector import RunReport


def tiny_config(**overrides):
    defaults = dict(
        num_nodes=4,
        protocol="pbft",
        epoch_length=8,
        max_batch_size=16,
        batch_rate=8.0,
        max_batch_timeout=0.5,
        view_change_timeout=3.0,
        epoch_change_timeout=3.0,
    )
    defaults.update(overrides)
    return ISSConfig(**defaults)


def tiny_workload(**overrides):
    defaults = dict(num_clients=2, total_rate=100.0, duration=4.0, payload_size=64)
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestDeployment:
    def test_run_returns_report_and_objects(self):
        result = Deployment(tiny_config(), workload=tiny_workload()).run()
        assert isinstance(result.report, RunReport)
        assert len(result.nodes) == 4
        assert len(result.clients) == 2
        assert result.report.completed > 0

    def test_extra_stats_present(self):
        report = Deployment(tiny_config(), workload=tiny_workload()).run().report
        for key in ("messages_sent", "bytes_sent", "epochs_completed", "sim_events"):
            assert key in report.extra

    def test_deterministic_given_seed(self):
        a = Deployment(tiny_config(), workload=tiny_workload()).run().report
        b = Deployment(tiny_config(), workload=tiny_workload()).run().report
        assert a.completed == b.completed
        assert a.latency.mean == pytest.approx(b.latency.mean)

    def test_different_workload_seed_changes_arrivals(self):
        a = Deployment(tiny_config(), workload=tiny_workload(random_seed=1)).run().report
        b = Deployment(tiny_config(), workload=tiny_workload(random_seed=2)).run().report
        assert a.submitted != b.submitted or a.extra["sim_events"] != b.extra["sim_events"]

    def test_run_experiment_wrapper(self):
        report = run_experiment(tiny_config(), tiny_workload())
        assert isinstance(report, RunReport)
        assert report.throughput > 0

    def test_network_config_respected(self):
        network = NetworkConfig(bandwidth_bps=5e6)
        deployment = Deployment(tiny_config(), network_config=network, workload=tiny_workload())
        assert deployment.network.config.bandwidth_bps == 5e6


class TestFindPeakThroughput:
    def test_reports_best_point(self):
        def fake_run(load):
            throughput = min(load, 300.0)
            return RunReport(
                duration=1.0, submitted=int(load), completed=int(throughput),
                throughput=throughput, latency=None,  # latency unused here
            )

        # Replace latency with a real summary to keep the dataclass honest.
        from repro.metrics.collector import LatencySummary

        def run(load):
            report = fake_run(load)
            report.latency = LatencySummary.from_samples([1.0])
            return report

        result = find_peak_throughput(run, offered_loads=[100.0, 200.0, 400.0, 800.0])
        assert result["peak_throughput"] == 300.0
        assert result["at_offered_load"] == 400.0
        assert len(result["points"]) == 4


class TestScenarioHelpers:
    def test_iss_config_protocol_specific_defaults(self):
        pbft = scenarios.iss_config("pbft", 4)
        hotstuff = scenarios.iss_config("hotstuff", 4)
        raft = scenarios.iss_config("raft", 4)
        assert pbft.batch_rate is not None
        assert hotstuff.batch_rate is None
        assert raft.byzantine is False and raft.client_signatures is False

    def test_baseline_config_single_leader(self):
        config = scenarios.baseline_config("pbft", 8)
        assert config.batch_rate is None
        assert config.min_segment_size == 1

    def test_bench_scale_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert scenarios.bench_scale() == 2.5
        monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-number")
        assert scenarios.bench_scale() == scenarios.DEFAULT_BENCH_SCALE
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")
        assert scenarios.bench_scale() == 0.25
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert scenarios.bench_scale() == scenarios.DEFAULT_BENCH_SCALE

    def test_flush_interval_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLUSH_INTERVAL", "0.05")
        assert scenarios.bench_flush_interval() == 0.05
        monkeypatch.setenv("REPRO_FLUSH_INTERVAL", "0")
        assert scenarios.bench_flush_interval() == 0.0
        monkeypatch.setenv("REPRO_FLUSH_INTERVAL", "garbage")
        assert scenarios.bench_flush_interval() == scenarios.DEFAULT_FLUSH_INTERVAL
        monkeypatch.setenv("REPRO_FLUSH_INTERVAL", "-1")
        assert scenarios.bench_flush_interval() == 0.0
        monkeypatch.delenv("REPRO_FLUSH_INTERVAL")
        assert scenarios.scaled_network().batch_flush_interval == scenarios.DEFAULT_FLUSH_INTERVAL

    def test_scalability_point_runs_quickly(self):
        row = scenarios.scalability_point("iss", "pbft", 4, offered_loads=(200.0,), duration=3.0)
        assert row["system"] == "iss" and row["nodes"] == 4
        assert row["peak_throughput"] > 0

    def test_scalability_point_single_leader(self):
        row = scenarios.scalability_point("single", "pbft", 4, offered_loads=(200.0,), duration=3.0)
        assert row["system"] == "single"
        assert row["peak_throughput"] > 0

    def test_scalability_point_rejects_unknown_system(self):
        with pytest.raises(ValueError):
            scenarios.scalability_point("quorum", "pbft", 4, offered_loads=(100.0,))

    def test_latency_throughput_sweep_rows(self):
        rows = scenarios.latency_throughput_sweep("pbft", 4, offered_loads=(100.0, 200.0), duration=3.0)
        assert len(rows) == 2
        assert rows[0]["offered_load"] == 100.0
        assert all(r["throughput"] > 0 for r in rows)

    def test_throughput_timeline_structure(self):
        result = scenarios.throughput_timeline(num_nodes=4, rate=150.0, duration=6.0)
        assert result["system"] == "iss"
        assert result["throughput"] > 0
        assert len(result["timeline"]) >= 5
