"""Durability tests for the file-backed storage (repro.storage.durable).

These pin the claims the live backend's recovery proof rests on:

* commits are fsync'd before the append returns (``always`` policy),
* a process reopening the same directory sees exactly what was appended,
* a torn WAL tail (crash mid-append) is detected and truncated on reopen,
  with every intact record before it preserved,
* compaction folds the prefix into an atomically-replaced snapshot file
  and rewrites the WAL, and a **fresh process** reloads the combined
  state correctly.
"""

import pickle
import subprocess
import sys
import zlib

import pytest

from repro.core.types import Batch, CheckpointCertificate, Request, RequestId
from repro.storage.durable import (
    FSYNC_ALWAYS,
    FSYNC_NEVER,
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    DurableNodeStorage,
    FileWriteAheadLog,
    fsync_policy,
    read_wal_frames,
)


def batch(client: int, timestamp: int) -> Batch:
    return Batch(
        requests=(
            Request(
                rid=RequestId(client=client, timestamp=timestamp), payload=b"x"
            ),
        )
    )


def certificate(epoch: int, last_sn: int) -> CheckpointCertificate:
    return CheckpointCertificate(
        epoch=epoch, last_sn=last_sn, log_root=b"root", signatures=()
    )


# ------------------------------------------------------------------ fsync
def test_fsync_on_every_commit_append(tmp_path):
    wal = FileWriteAheadLog(tmp_path / WAL_FILENAME, fsync=FSYNC_ALWAYS)
    for sn in range(5):
        wal.append_commit(sn, batch(0, sn), epoch=0)
    assert wal.fsyncs == 5
    wal.close()


def test_fsync_never_policy_skips_fsync(tmp_path):
    wal = FileWriteAheadLog(tmp_path / WAL_FILENAME, fsync=FSYNC_NEVER)
    wal.append_commit(0, batch(0, 0), epoch=0)
    assert wal.fsyncs == 0
    wal.close()
    # The bytes are still flushed: a clean close loses nothing.
    records, _offset, torn = read_wal_frames(tmp_path / WAL_FILENAME)
    assert len(records) == 1 and not torn


def test_fsync_policy_env(monkeypatch):
    monkeypatch.delenv("REPRO_FSYNC", raising=False)
    assert fsync_policy() == FSYNC_ALWAYS
    monkeypatch.setenv("REPRO_FSYNC", "never")
    assert fsync_policy() == FSYNC_NEVER
    # Misconfiguration degrades to the safe policy, never silently off.
    monkeypatch.setenv("REPRO_FSYNC", "sometimes")
    assert fsync_policy() == FSYNC_ALWAYS


# ----------------------------------------------------------------- reopen
def test_wal_reopen_round_trip(tmp_path):
    path = tmp_path / WAL_FILENAME
    wal = FileWriteAheadLog(path)
    for sn in range(4):
        wal.append_commit(sn, batch(1, sn), epoch=0)
    wal.append_epoch_start(1)
    wal.append_checkpoint(certificate(0, 3))
    wal.close()

    reopened = FileWriteAheadLog(path)
    assert not reopened.torn_tail_detected
    assert [sn for sn, _entry, _epoch in reopened.commits()] == [0, 1, 2, 3]
    assert len(reopened.checkpoints()) == 1
    # Appends after reopen extend the same file.
    reopened.append_commit(4, batch(1, 4), epoch=1)
    reopened.close()
    third = FileWriteAheadLog(path)
    assert [sn for sn, _entry, _epoch in third.commits()] == [0, 1, 2, 3, 4]
    third.close()


@pytest.mark.parametrize("chop", [1, 3, 7])
def test_torn_tail_truncated_on_reopen(tmp_path, chop):
    path = tmp_path / WAL_FILENAME
    wal = FileWriteAheadLog(path)
    for sn in range(6):
        wal.append_commit(sn, batch(2, sn), epoch=0)
    wal.close()

    # Simulate a crash mid-append: chop bytes off the last frame.
    data = path.read_bytes()
    path.write_bytes(data[:-chop])

    reopened = FileWriteAheadLog(path)
    assert reopened.torn_tail_detected
    assert [sn for sn, _entry, _epoch in reopened.commits()] == [0, 1, 2, 3, 4]
    reopened.close()
    # The truncation is durable: a further reopen sees a clean file.
    third = FileWriteAheadLog(path)
    assert not third.torn_tail_detected
    assert len(third.commits()) == 5
    third.close()


def test_corrupted_payload_detected_by_crc(tmp_path):
    path = tmp_path / WAL_FILENAME
    wal = FileWriteAheadLog(path)
    wal.append_commit(0, batch(3, 0), epoch=0)
    wal.append_commit(1, batch(3, 1), epoch=0)
    wal.close()

    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a byte inside the last frame's payload
    path.write_bytes(bytes(data))

    records, _offset, torn = read_wal_frames(path)
    assert torn and len(records) == 1


def test_unpicklable_tail_is_torn(tmp_path):
    path = tmp_path / WAL_FILENAME
    wal = FileWriteAheadLog(path)
    wal.append_commit(0, batch(4, 0), epoch=0)
    wal.close()
    # A frame whose CRC is fine but whose payload is not a WalRecord pickle.
    payload = b"not a pickle"
    frame = (
        len(payload).to_bytes(4, "big")
        + zlib.crc32(payload).to_bytes(4, "big")
        + payload
    )
    with open(path, "ab") as fh:
        fh.write(frame)
    records, _offset, torn = read_wal_frames(path)
    assert torn and len(records) == 1


# ------------------------------------------------------- compaction + reload
def _fill_storage(storage: DurableNodeStorage) -> None:
    for sn in range(8):
        storage.record_commit(sn, batch(5, sn), epoch=0)
    storage.record_stable_checkpoint(certificate(0, 5))
    for sn in range(8, 10):
        storage.record_commit(sn, batch(5, sn), epoch=1)


def test_compaction_snapshot_plus_wal_reload(tmp_path):
    storage = DurableNodeStorage(0, tmp_path / "node0")
    _fill_storage(storage)
    assert storage.compactions == 1
    assert storage.latest_snapshot().last_sn == 5
    assert storage.durable_entry_count() == 10
    storage.close()

    reloaded = DurableNodeStorage(0, tmp_path / "node0")
    assert reloaded.has_state()
    assert reloaded.latest_snapshot().last_sn == 5
    assert reloaded.durable_entry_count() == 10
    # The WAL holds exactly the post-compaction tail.
    assert [sn for sn, _e, _ep in reloaded.wal.commits()] == [6, 7, 8, 9]
    reloaded.close()


def test_half_written_snapshot_degrades_to_wal_only(tmp_path):
    directory = tmp_path / "node0"
    storage = DurableNodeStorage(0, directory)
    for sn in range(3):
        storage.record_commit(sn, batch(6, sn), epoch=0)
    storage.close()
    # A garbage snapshot file (crash before atomic replace existed) must
    # not poison recovery: it reads as "no snapshot".
    (directory / SNAPSHOT_FILENAME).write_bytes(b"\x80garbage")
    reloaded = DurableNodeStorage(0, directory)
    assert reloaded.latest_snapshot() is None
    assert reloaded.durable_entry_count() == 3
    reloaded.close()


def test_fresh_process_reloads_snapshot_and_wal(tmp_path):
    storage = DurableNodeStorage(0, tmp_path / "node0")
    _fill_storage(storage)
    expected = storage.durable_entry_count()
    storage.close()

    script = (
        "from repro.storage.durable import DurableNodeStorage\n"
        f"s = DurableNodeStorage(0, {str(tmp_path / 'node0')!r})\n"
        "print(s.has_state(), s.durable_entry_count(), "
        "s.latest_snapshot().last_sn)\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    assert result.stdout.split() == ["True", str(expected), "5"]


def test_pickled_frames_round_trip_exact_records(tmp_path):
    path = tmp_path / WAL_FILENAME
    wal = FileWriteAheadLog(path)
    entry = batch(7, 0)
    wal.append_commit(0, entry, epoch=2)
    wal.close()
    records, _offset, _torn = read_wal_frames(path)
    assert records[0].sn == 0
    assert records[0].epoch == 2
    assert pickle.dumps(records[0].entry) == pickle.dumps(entry)
