"""Unit tests for state transfer (catching up from a stable checkpoint)."""

import pytest

from repro.core.checkpoint import CheckpointProtocol
from repro.core.config import ISSConfig
from repro.core.log import Log
from repro.core.state_transfer import StateRequest, StateResponse, StateTransfer
from repro.core.types import NIL
from repro.crypto.signatures import KeyStore
from tests.conftest import make_batch, make_request


class Harness:
    """Two nodes with checkpoint + state-transfer machinery wired directly."""

    def __init__(self, epoch_length=4, num_nodes=4):
        self.config = ISSConfig(num_nodes=num_nodes, epoch_length=epoch_length, batch_rate=None)
        self.key_store = KeyStore(deployment_seed=6)
        self.sent = []
        self.logs = {n: Log() for n in range(num_nodes)}
        self.checkpoints = {}
        self.transfers = {}
        for node in range(num_nodes):
            self.checkpoints[node] = CheckpointProtocol(
                node_id=node,
                config=self.config,
                key_store=self.key_store,
                broadcast_fn=lambda msg: None,
                on_stable=lambda epoch, cert: None,
            )
            self.transfers[node] = StateTransfer(
                node_id=node,
                config=self.config,
                checkpoints=self.checkpoints[node],
                send_fn=lambda dst, msg, node=node: self.sent.append((node, dst, msg)),
                apply_entry_fn=lambda sn, entry, epoch, node=node: self.logs[node].commit(
                    sn, entry, epoch, now=0.0
                ),
            )

    def fill_epoch(self, node, epoch=0):
        for sn in range(epoch * self.config.epoch_length, (epoch + 1) * self.config.epoch_length):
            self.logs[node].commit(sn, make_batch(make_request(timestamp=sn)), epoch=epoch, now=0.0)

    def make_stable(self, epoch=0, source_node=0):
        """Give every node a stable certificate for ``epoch`` built from node 0's log."""
        for node in range(self.config.num_nodes):
            self.checkpoints[node]._announced_local.discard(epoch)
        messages = []
        for node in range(self.config.num_nodes):
            proto = self.checkpoints[node]
            proto.local_epoch_complete(epoch, self.logs[source_node])
        # Exchange: every protocol already recorded its own; deliver the rest.
        for node in range(self.config.num_nodes):
            for other in range(self.config.num_nodes):
                if other == node:
                    continue
                from repro.core.checkpoint import CheckpointMsg, checkpoint_signing_payload, epoch_log_root

                root = epoch_log_root(self.logs[source_node], epoch, self.config.epoch_length)
                last_sn = (epoch + 1) * self.config.epoch_length - 1
                payload = checkpoint_signing_payload(epoch, last_sn, root)
                self.checkpoints[node].handle_message(
                    other,
                    CheckpointMsg(
                        epoch=epoch, last_sn=last_sn, log_root=root, sender=other,
                        signature=self.key_store.sign(other, payload),
                    ),
                )


class TestStateTransfer:
    def test_request_and_apply_roundtrip(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.fill_epoch(1)  # node 1 is behind with an empty log
        harness.make_stable(0)
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert harness.sent, "a StateRequest should have been sent"
        _, dst, request = harness.sent[-1]
        assert dst == 0 and isinstance(request, StateRequest)
        responses = harness.transfers[0].build_responses(request, harness.logs[0])
        assert len(responses) == 1
        assert harness.transfers[1].handle_response(responses[0], harness.logs[1])
        assert harness.logs[1].is_complete(range(4))
        assert harness.transfers[1].transfers_completed == 1

    def test_response_without_stable_checkpoint_not_built(self):
        harness = Harness()
        harness.fill_epoch(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        assert harness.transfers[0].build_responses(request, harness.logs[0]) == []

    def test_tampered_entries_rejected(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        tampered = StateResponse(
            epoch=0,
            entries=tuple((sn, NIL) for sn, _ in response.entries),
            certificate=response.certificate,
        )
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert not harness.transfers[1].handle_response(tampered, harness.logs[1])
        assert not harness.logs[1].has_entry(0)

    def test_bad_certificate_rejected(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        from dataclasses import replace

        broken_cert = replace(response.certificate, signatures=response.certificate.signatures[:1])
        bad = StateResponse(epoch=0, entries=response.entries, certificate=broken_cert)
        assert not harness.transfers[1].handle_response(bad, harness.logs[1])

    def test_wrong_sequence_numbers_rejected(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        shifted = StateResponse(
            epoch=0,
            entries=tuple((sn + 1, entry) for sn, entry in response.entries),
            certificate=response.certificate,
        )
        assert not harness.transfers[1].handle_response(shifted, harness.logs[1])

    def test_duplicate_request_not_resent(self):
        harness = Harness()
        harness.transfers[1].request_missing(0, 0, peers=[0])
        sent_before = len(harness.sent)
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert len(harness.sent) == sent_before

    def test_already_complete_epoch_is_accepted_without_reapply(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.fill_epoch(0 if False else 1)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        # Node 0 already holds the epoch: handling its own response is a no-op success.
        assert harness.transfers[0].handle_response(response, harness.logs[0])
