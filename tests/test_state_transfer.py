"""Unit tests for state transfer (catching up from a stable checkpoint)."""

import pytest

from repro.core.checkpoint import CheckpointProtocol
from repro.core.config import ISSConfig
from repro.core.log import Log
from repro.core.state_transfer import StateRequest, StateResponse, StateTransfer
from repro.core.types import NIL
from repro.crypto.signatures import KeyStore
from tests.conftest import make_batch, make_request


class Harness:
    """Two nodes with checkpoint + state-transfer machinery wired directly."""

    def __init__(self, epoch_length=4, num_nodes=4):
        self.config = ISSConfig(num_nodes=num_nodes, epoch_length=epoch_length, batch_rate=None)
        self.key_store = KeyStore(deployment_seed=6)
        self.sent = []
        self.logs = {n: Log() for n in range(num_nodes)}
        self.checkpoints = {}
        self.transfers = {}
        for node in range(num_nodes):
            self.checkpoints[node] = CheckpointProtocol(
                node_id=node,
                config=self.config,
                key_store=self.key_store,
                broadcast_fn=lambda msg: None,
                on_stable=lambda epoch, cert: None,
            )
            self.transfers[node] = StateTransfer(
                node_id=node,
                config=self.config,
                checkpoints=self.checkpoints[node],
                send_fn=lambda dst, msg, node=node: self.sent.append((node, dst, msg)),
                apply_entry_fn=lambda sn, entry, epoch, node=node: self.logs[node].commit(
                    sn, entry, epoch, now=0.0
                ),
            )

    def fill_epoch(self, node, epoch=0):
        for sn in range(epoch * self.config.epoch_length, (epoch + 1) * self.config.epoch_length):
            self.logs[node].commit(sn, make_batch(make_request(timestamp=sn)), epoch=epoch, now=0.0)

    def make_stable(self, epoch=0, source_node=0):
        """Give every node a stable certificate for ``epoch`` built from node 0's log."""
        for node in range(self.config.num_nodes):
            self.checkpoints[node]._announced_local.discard(epoch)
        messages = []
        for node in range(self.config.num_nodes):
            proto = self.checkpoints[node]
            proto.local_epoch_complete(epoch, self.logs[source_node])
        # Exchange: every protocol already recorded its own; deliver the rest.
        for node in range(self.config.num_nodes):
            for other in range(self.config.num_nodes):
                if other == node:
                    continue
                from repro.core.checkpoint import CheckpointMsg, checkpoint_signing_payload, epoch_log_root

                root = epoch_log_root(self.logs[source_node], epoch, self.config.epoch_length)
                last_sn = (epoch + 1) * self.config.epoch_length - 1
                payload = checkpoint_signing_payload(epoch, last_sn, root)
                self.checkpoints[node].handle_message(
                    other,
                    CheckpointMsg(
                        epoch=epoch, last_sn=last_sn, log_root=root, sender=other,
                        signature=self.key_store.sign(other, payload),
                    ),
                )


class TestStateTransfer:
    def test_request_and_apply_roundtrip(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.fill_epoch(1)  # node 1 is behind with an empty log
        harness.make_stable(0)
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert harness.sent, "a StateRequest should have been sent"
        _, dst, request = harness.sent[-1]
        assert dst == 0 and isinstance(request, StateRequest)
        responses = harness.transfers[0].build_responses(request, harness.logs[0])
        assert len(responses) == 1
        assert harness.transfers[1].handle_response(responses[0], harness.logs[1])
        assert harness.logs[1].is_complete(range(4))
        assert harness.transfers[1].transfers_completed == 1

    def test_response_without_stable_checkpoint_not_built(self):
        harness = Harness()
        harness.fill_epoch(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        assert harness.transfers[0].build_responses(request, harness.logs[0]) == []

    def test_tampered_entries_rejected(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        tampered = StateResponse(
            epoch=0,
            entries=tuple((sn, NIL) for sn, _ in response.entries),
            certificate=response.certificate,
        )
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert not harness.transfers[1].handle_response(tampered, harness.logs[1])
        assert not harness.logs[1].has_entry(0)

    def test_bad_certificate_rejected(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        from dataclasses import replace

        broken_cert = replace(response.certificate, signatures=response.certificate.signatures[:1])
        bad = StateResponse(epoch=0, entries=response.entries, certificate=broken_cert)
        assert not harness.transfers[1].handle_response(bad, harness.logs[1])

    def test_wrong_sequence_numbers_rejected(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        shifted = StateResponse(
            epoch=0,
            entries=tuple((sn + 1, entry) for sn, entry in response.entries),
            certificate=response.certificate,
        )
        assert not harness.transfers[1].handle_response(shifted, harness.logs[1])

    def test_duplicate_request_not_resent(self):
        harness = Harness()
        harness.transfers[1].request_missing(0, 0, peers=[0])
        sent_before = len(harness.sent)
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert len(harness.sent) == sent_before

    def test_already_complete_epoch_is_accepted_without_reapply(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.fill_epoch(0 if False else 1)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        # Node 0 already holds the epoch: handling its own response is a no-op success.
        assert harness.transfers[0].handle_response(response, harness.logs[0])


class TestStateTransferEdgeCases:
    """Adversarial and partial-failure paths of the transfer protocol."""

    def test_forged_signature_certificate_rejected(self):
        """A certificate whose signatures do not verify must be discarded."""
        from dataclasses import replace

        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        signatures = response.certificate.signatures
        forged_cert = replace(
            response.certificate,
            signatures=((signatures[0][0], b"forged"),) + signatures[1:],
        )
        forged = StateResponse(epoch=0, entries=response.entries, certificate=forged_cert)
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert not harness.transfers[1].handle_response(forged, harness.logs[1])
        assert not harness.logs[1].has_entry(0)

    def test_duplicate_signer_padding_rejected(self):
        """2f+1 signature *slots* filled by repeating one signer is no quorum."""
        from dataclasses import replace

        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        request = StateRequest(first_epoch=0, last_epoch=0)
        response = harness.transfers[0].build_responses(request, harness.logs[0])[0]
        node, signature = response.certificate.signatures[0]
        padded_cert = replace(
            response.certificate,
            signatures=tuple((node, signature) for _ in response.certificate.signatures),
        )
        padded = StateResponse(epoch=0, entries=response.entries, certificate=padded_cert)
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert not harness.transfers[1].handle_response(padded, harness.logs[1])

    def test_certificate_from_wrong_epoch_rejected(self):
        """A valid certificate attached to another epoch's entries fails the
        Merkle-root binding even though its signatures verify."""
        harness = Harness()
        harness.fill_epoch(0, epoch=0)
        harness.fill_epoch(0, epoch=1)
        harness.make_stable(0)
        harness.make_stable(1)
        entries_0 = harness.transfers[0].build_responses(
            StateRequest(first_epoch=0, last_epoch=0), harness.logs[0]
        )[0].entries
        cert_1 = harness.checkpoints[0].stable_checkpoint(1)
        mismatched = StateResponse(epoch=0, entries=entries_0, certificate=cert_1)
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert not harness.transfers[1].handle_response(mismatched, harness.logs[1])
        assert not harness.logs[1].has_entry(0)

    def test_partial_range_response_covers_only_stable_epochs(self):
        """A responder answers the stable subset of a range and stays silent
        about the rest — the requester keeps those epochs in flight."""
        harness = Harness()
        harness.fill_epoch(0, epoch=0)
        harness.fill_epoch(0, epoch=1)
        harness.fill_epoch(0, epoch=2)
        harness.make_stable(0)  # epochs 1 and 2 complete but not stable
        request = StateRequest(first_epoch=0, last_epoch=2)
        responses = harness.transfers[0].build_responses(request, harness.logs[0])
        assert [r.epoch for r in responses] == [0]
        harness.transfers[1].request_missing(0, 2, peers=[0])
        assert harness.transfers[1].handle_response(responses[0], harness.logs[1])
        assert harness.logs[1].is_complete(range(0, 4))
        assert not harness.logs[1].has_entry(4)
        # Epochs 1-2 stay marked in flight (awaiting the silent responder), so
        # an overlapping re-request skips them; only epoch 0 — completed and
        # no longer in flight — is re-covered, and answering it again is an
        # idempotent no-op.  ``force=True`` is the recovery path's way past
        # the in-flight markers when the responder is presumed dead.
        assert harness.transfers[1]._in_flight == {1, 2}
        harness.sent.clear()
        harness.transfers[1].request_missing(0, 2, peers=[0])
        _, _, follow_up = harness.sent[-1]
        assert (follow_up.first_epoch, follow_up.last_epoch) == (0, 0)
        harness.sent.clear()
        harness.transfers[1].request_missing(0, 2, peers=[0], force=True)
        _, _, forced = harness.sent[-1]
        assert (forced.first_epoch, forced.last_epoch) == (0, 2)

    def test_overlapping_requests_deduplicate_in_flight_epochs(self):
        harness = Harness()
        harness.transfers[1].request_missing(0, 1, peers=[0])
        harness.sent.clear()
        harness.transfers[1].request_missing(1, 2, peers=[0])
        _, _, request = harness.sent[-1]
        # Epoch 1 is already in flight; only epoch 2 is re-requested.
        assert (request.first_epoch, request.last_epoch) == (2, 2)

    def test_force_rerequests_in_flight_epochs(self):
        """The recovery path re-asks even in-flight epochs (the original
        responder may have crashed mid-transfer)."""
        harness = Harness()
        harness.transfers[1].request_missing(0, 0, peers=[0])
        harness.sent.clear()
        harness.transfers[1].request_missing(0, 0, peers=[0])
        assert not harness.sent  # deduplicated
        harness.transfers[1].request_missing(0, 0, peers=[0], force=True)
        assert harness.sent  # forced past the in-flight marker

    def test_open_ended_probe_substitutes_latest_stable(self):
        from repro.core.state_transfer import LATEST_STABLE

        harness = Harness()
        harness.fill_epoch(0, epoch=0)
        harness.fill_epoch(0, epoch=1)
        harness.make_stable(0)
        harness.make_stable(1)
        probe = StateRequest(first_epoch=0, last_epoch=LATEST_STABLE)
        responses = harness.transfers[0].build_responses(probe, harness.logs[0])
        assert [r.epoch for r in responses] == [0, 1]

    def test_open_ended_probe_with_nothing_stable_is_silent(self):
        from repro.core.state_transfer import LATEST_STABLE

        harness = Harness()
        harness.fill_epoch(0)  # complete locally but no stable checkpoint
        probe = StateRequest(first_epoch=0, last_epoch=LATEST_STABLE)
        assert harness.transfers[0].build_responses(probe, harness.logs[0]) == []

    def test_responder_crash_mid_transfer_covered_by_redundant_peer(self):
        """Peer A dies after shipping epoch 0 of [0, 1]; peer B's responses
        complete the transfer without any special-casing."""
        harness = Harness()
        harness.fill_epoch(0, epoch=0)
        harness.fill_epoch(0, epoch=1)
        harness.fill_epoch(2, epoch=0)
        harness.fill_epoch(2, epoch=1)
        harness.make_stable(0)
        harness.make_stable(1)
        request = StateRequest(first_epoch=0, last_epoch=1)
        from_a = harness.transfers[0].build_responses(request, harness.logs[0])
        from_b = harness.transfers[2].build_responses(request, harness.logs[2])
        harness.transfers[1].request_missing(0, 1, peers=[0, 2])
        # Peer A crashes mid-transfer: only its epoch-0 response arrives.
        assert harness.transfers[1].handle_response(from_a[0], harness.logs[1])
        assert not harness.logs[1].has_entry(4)
        # Peer B's full response set fills the rest; the duplicate epoch 0 is
        # an idempotent no-op.
        for response in from_b:
            assert harness.transfers[1].handle_response(response, harness.logs[1])
        assert harness.logs[1].is_complete(range(0, 8))
        assert harness.transfers[1].entries_applied == 8

    def test_transfer_counters_track_bytes_and_probes(self):
        harness = Harness()
        harness.fill_epoch(0)
        harness.make_stable(0)
        transfer = harness.transfers[1]
        transfer.request_latest(0, peers=[0])
        assert transfer.probes_sent == 1
        response = harness.transfers[0].build_responses(
            StateRequest(first_epoch=0, last_epoch=0), harness.logs[0]
        )[0]
        transfer.request_missing(0, 0, peers=[0])
        assert transfer.handle_response(response, harness.logs[1])
        assert transfer.bytes_received == response.wire_size()
        assert transfer.entries_applied == harness.config.epoch_length


class FakeTimer:
    """Scheduler stub: remembers its callback and whether it was cancelled."""

    def __init__(self, delay, callback):
        self.delay = delay
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def fire(self):
        if not self.cancelled:
            self.callback()


class StaggerHarness(Harness):
    """Harness whose requester (node 1) gets a capturing fake scheduler."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.timers = []

        def schedule(delay, callback):
            timer = FakeTimer(delay, callback)
            self.timers.append(timer)
            return timer

        self.transfers[1] = StateTransfer(
            node_id=1,
            config=self.config,
            checkpoints=self.checkpoints[1],
            send_fn=lambda dst, msg: self.sent.append((1, dst, msg)),
            apply_entry_fn=lambda sn, entry, epoch: self.logs[1].commit(
                sn, entry, epoch, now=0.0
            ),
            schedule_fn=schedule,
            probe_stagger=2.0,
        )


class TestStaggeredEscalation:
    """The duplicate-response trim: staggered, narrowing, never-cancelled."""

    def test_ranged_request_asks_one_peer_and_schedules_the_rest(self):
        harness = StaggerHarness()
        harness.transfers[1].request_missing(0, 1, peers=[0, 2, 3])
        # Exactly one immediate request...
        assert [(src, dst) for src, dst, _ in harness.sent] == [(1, 0)]
        # ...one escalation timer per remaining peer plus the expiry timer.
        assert [t.delay for t in harness.timers] == [2.0, 4.0, 6.0]

    def test_escalation_fires_when_nothing_arrived(self):
        harness = StaggerHarness()
        harness.transfers[1].request_missing(0, 1, peers=[0, 2, 3])
        harness.sent.clear()
        harness.timers[0].fire()  # first peer never answered
        assert [(src, dst) for src, dst, _ in harness.sent] == [(1, 2)]
        assert harness.transfers[1].probe_escalations == 1

    def test_escalation_narrows_to_contiguous_missing_runs(self):
        """Epoch 1 of [0, 2] already applied: the escalation ships two
        requests ([0,0] and [2,2]) instead of re-spanning the gap."""
        harness = StaggerHarness(epoch_length=2)
        harness.transfers[1].request_missing(0, 2, peers=[0, 2])
        harness.transfers[1]._in_flight.discard(1)  # epoch 1 arrived meanwhile
        harness.sent.clear()
        harness.timers[0].fire()
        requests = [msg for _src, _dst, msg in harness.sent]
        assert [(r.first_epoch, r.last_epoch) for r in requests] == [(0, 0), (2, 2)]

    def test_escalation_noops_once_everything_applied(self):
        harness = StaggerHarness()
        harness.transfers[1].request_missing(0, 0, peers=[0, 2])
        harness.transfers[1]._in_flight.discard(0)
        harness.sent.clear()
        harness.timers[0].fire()
        assert harness.sent == []
        assert harness.transfers[1].probe_escalations == 0

    def test_open_ended_escalation_rebases_past_local_stable(self):
        """A lagging first responder must not cap recovery: the next peer
        is asked for everything past what was already obtained."""
        harness = StaggerHarness()
        harness.fill_epoch(1, epoch=0)
        harness.make_stable(0, source_node=1)  # epoch 0 now locally stable
        harness.transfers[1].request_latest(0, peers=[0, 2, 3])
        harness.sent.clear()
        harness.timers[0].fire()
        (_src, dst, request), = harness.sent
        assert dst == 2
        assert (request.first_epoch, request.last_epoch) == (1, -1)

    def test_expiry_releases_in_flight_for_future_triggers(self):
        """A chain of dead responders cannot wedge catch-up: after the last
        peer was asked the reservation expires and a later trigger retries."""
        harness = StaggerHarness()
        transfer = harness.transfers[1]
        transfer.request_missing(0, 1, peers=[0, 2])
        assert 0 in transfer._in_flight and 1 in transfer._in_flight
        for timer in list(harness.timers):
            timer.fire()  # escalation to peer 2, then expiry — nobody answered
        assert 0 not in transfer._in_flight and 1 not in transfer._in_flight
        harness.sent.clear()
        transfer.request_missing(0, 1, peers=[0, 2])  # next trigger retries
        assert len(harness.sent) == 1

    def test_stop_cancels_outstanding_timers(self):
        harness = StaggerHarness()
        harness.transfers[1].request_missing(0, 1, peers=[0, 2, 3])
        harness.transfers[1].stop()
        assert all(timer.cancelled for timer in harness.timers)
