"""Wire-size sanity tests for every protocol message type.

The bandwidth model is what drives the reproduction's headline result, so the
sizes fed into it must be sane: payload-carrying messages must scale with the
payload they carry, votes and acknowledgements must stay small and constant,
and nothing may report a non-positive size.
"""

import pytest

from repro.consensus.brb import BrbEcho, BrbReady, BrbSend
from repro.consensus.bc import BcCommit, BcPrepare, BcPropose, BcViewChange
from repro.core.checkpoint import CheckpointMsg
from repro.core.messages import (
    BucketAssignmentMsg,
    ClientRequestMsg,
    ClientResponseBatchMsg,
    ClientResponseMsg,
    InstanceMessage,
)
from repro.core.state_transfer import StateRequest, StateResponse
from repro.core.types import Batch, CheckpointCertificate, NIL
from repro.crypto.signatures import KeyStore
from repro.crypto.threshold import ThresholdScheme
from repro.fd.detector import HeartbeatMsg
from repro.hotstuff.messages import Block, GENESIS_QC, NewRound, Proposal, QuorumCertificate, Vote
from repro.pbft.messages import Commit, NewView, Prepare, PrePrepare, PreparedProof, ViewChange
from repro.raft.messages import AppendEntries, AppendReply, RaftEntry, RequestVote, VoteReply
from repro.sim.network import wire_size
from tests.conftest import make_batch, make_request


def big_batch(requests=32, payload=500):
    return make_batch(*(make_request(timestamp=i, payload=b"x" * payload) for i in range(requests)))


def small_batch():
    return make_batch(make_request(payload=b"x"))


class TestPayloadProportionality:
    def test_pbft_preprepare_scales_with_batch(self):
        big = PrePrepare(view=0, sn=0, value=big_batch(), digest=b"d" * 32)
        small = PrePrepare(view=0, sn=0, value=small_batch(), digest=b"d" * 32)
        assert big.wire_size() > small.wire_size()
        assert big.wire_size() >= big_batch().size_bytes()

    def test_pbft_votes_are_small_and_constant(self):
        prepare = Prepare(view=0, sn=0, digest=b"d" * 32)
        commit = Commit(view=0, sn=0, digest=b"d" * 32)
        assert prepare.wire_size() < 200
        assert commit.wire_size() < 200

    def test_pbft_new_view_carries_preprepares(self):
        preprepares = tuple(
            PrePrepare(view=1, sn=sn, value=NIL, digest=NIL.digest()) for sn in range(4)
        )
        message = NewView(new_view=1, preprepares=preprepares)
        assert message.wire_size() >= sum(p.wire_size() for p in preprepares)

    def test_hotstuff_proposal_scales_with_batch(self):
        block_big = Block(view=0, round=0, sn=0, value=big_batch(), parent_digest=GENESIS_QC.block_digest, justify=GENESIS_QC)
        block_small = Block(view=0, round=0, sn=0, value=small_batch(), parent_digest=GENESIS_QC.block_digest, justify=GENESIS_QC)
        assert Proposal(block=block_big).wire_size() > Proposal(block=block_small).wire_size()

    def test_hotstuff_vote_small(self):
        ks = KeyStore()
        scheme = ThresholdScheme(ks, range(4), 3)
        partial = scheme.sign_share(0, b"d" * 32)
        vote = Vote(view=0, block_digest=b"d" * 32, partial=partial)
        assert vote.wire_size() < 250

    def test_raft_append_entries_scales_with_entries(self):
        entries = tuple(RaftEntry(term=0, sn=i, value=big_batch()) for i in range(3))
        heavy = AppendEntries(term=0, prev_index=-1, prev_term=0, entries=entries, leader_commit=-1)
        heartbeat = AppendEntries(term=0, prev_index=-1, prev_term=0, entries=(), leader_commit=-1)
        assert heavy.wire_size() > 3 * big_batch().size_bytes()
        assert heartbeat.wire_size() < 200

    def test_brb_messages_scale_with_payload(self):
        send = BrbSend(instance=0, payload=big_batch())
        echo = BrbEcho(instance=0, payload=big_batch())
        ready = BrbReady(instance=0, payload=big_batch())
        for message in (send, echo, ready):
            assert message.wire_size() >= big_batch().size_bytes()

    def test_state_response_scales_with_entries(self):
        cert = CheckpointCertificate(epoch=0, last_sn=3, log_root=b"r" * 32, signatures=((0, b"s" * 64),))
        heavy = StateResponse(epoch=0, entries=tuple((sn, big_batch()) for sn in range(4)), certificate=cert)
        light = StateResponse(epoch=0, entries=tuple((sn, NIL) for sn in range(4)), certificate=cert)
        assert heavy.wire_size() > light.wire_size()


class TestAllMessagesHavePositiveSize:
    @pytest.mark.parametrize(
        "message",
        [
            PrePrepare(view=0, sn=0, value=NIL, digest=b"d"),
            Prepare(view=0, sn=0, digest=b"d"),
            Commit(view=0, sn=0, digest=b"d"),
            ViewChange(new_view=1, prepared=()),
            PreparedProof(view=0, sn=0, digest=b"d", value=NIL),
            NewView(new_view=1, preprepares=()),
            NewRound(round=1, high_qc=GENESIS_QC),
            QuorumCertificate(view=0, block_digest=b"d", signature=None),
            AppendReply(term=0, success=True, match_index=3),
            RequestVote(term=1, last_log_index=0, last_log_term=0),
            VoteReply(term=1, granted=True),
            BcPropose(instance=0, view=0, value="v"),
            BcPrepare(instance=0, view=0, value_key="k"),
            BcCommit(instance=0, view=0, value_key="k"),
            BcViewChange(instance=0, new_view=1, prepared_view=-1, prepared_value=None),
            CheckpointMsg(epoch=0, last_sn=7, log_root=b"r" * 32, sender=0, signature=b"s" * 64),
            StateRequest(first_epoch=0, last_epoch=2),
            HeartbeatMsg(sender=1),
            ClientResponseMsg(rid=make_request().rid, sn=1, node=0),
            ClientResponseBatchMsg(client=0, entries=((make_request().rid, 1),), node=0),
            BucketAssignmentMsg(epoch=0, assignment=((0, 1),)),
        ],
    )
    def test_positive_wire_size(self, message):
        assert wire_size(message) > 0

    def test_instance_envelope_adds_overhead(self):
        inner = Prepare(view=0, sn=0, digest=b"d")
        wrapped = InstanceMessage(instance_id=(0, 1), payload=inner)
        assert wrapped.wire_size() > inner.wire_size()

    def test_response_batch_scales_with_entries(self):
        rids = [make_request(timestamp=t).rid for t in range(8)]
        big = ClientResponseBatchMsg(client=0, entries=tuple((r, i) for i, r in enumerate(rids)), node=0)
        small = ClientResponseBatchMsg(client=0, entries=((rids[0], 0),), node=0)
        assert big.wire_size() > small.wire_size()
        # Aggregation must beat the per-request form for whole batches.
        assert big.wire_size() < len(rids) * ClientResponseMsg(rid=rids[0], sn=0, node=0).wire_size()

    def test_client_request_includes_signature(self):
        from repro.core.validation import sign_request

        ks = KeyStore()
        signed = sign_request(ks, make_request(payload=b"p" * 100))
        unsigned = make_request(payload=b"p" * 100)
        assert ClientRequestMsg(request=signed).wire_size() > ClientRequestMsg(request=unsigned).wire_size()
