"""Cross-engine differential suite: sharded vs single-queue simulator.

The sharded engine's contract is *bit-identity*: for any scenario and seed
it must execute the exact same schedule as the single-queue engine — same
delivered traces on every node, same event/message totals, same completion
figures.  These tests pin that contract over the protocol × batching
matrix and over the fault paths (crash + restart, partition), plus unit
tests of the :class:`~repro.sim.sharded.ShardedSimulator` itself.

The seeded fuzzer (``tests/test_scenario_fuzz.py``) widens the same checks
to a random scenario population.
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    ENGINE_SHARDED,
    ENGINE_SINGLE,
    NetworkConfig,
    SimConfig,
)
from repro.harness import scenarios
from repro.harness.invariants import assert_invariants, assert_runs_equivalent
from repro.harness.runner import Deployment
from repro.sim.chaos import PartitionSpec
from repro.sim.faults import CrashSpec, RestartSpec
from repro.sim.sharded import ShardedSimulator
from repro.sim.simulator import SimulationError, Simulator


def _network(batching: bool) -> NetworkConfig:
    return NetworkConfig(
        bandwidth_bps=scenarios.SCALED_BANDWIDTH_BPS,
        batch_flush_interval=scenarios.DEFAULT_FLUSH_INTERVAL if batching else 0.0,
    )


def _run(engine: str, protocol: str, batching: bool, **kwargs) -> object:
    config = scenarios.chaos_config(protocol, 4, random_seed=7)
    deployment = Deployment(
        config=config,
        network_config=_network(batching),
        workload=scenarios._workload(rate=300.0, duration=3.0),
        sim_config=SimConfig(engine=engine),
        recovery_poll=0.25,
        probe_stagger=0.5,
        **kwargs,
    )
    return deployment.run()


@pytest.mark.parametrize("protocol", ["pbft", "hotstuff", "raft"])
@pytest.mark.parametrize("batching", [True, False], ids=["batched", "unbatched"])
def test_engines_bit_identical(protocol, batching):
    """Every protocol × batching combination runs identically on both engines."""
    single = _run(ENGINE_SINGLE, protocol, batching)
    sharded = _run(ENGINE_SHARDED, protocol, batching)
    label = f"{protocol}/{'batched' if batching else 'unbatched'}"
    assert_invariants(single, context=f"{label} single")
    assert_invariants(sharded, context=f"{label} sharded")
    assert_runs_equivalent(single, sharded, context=label)
    assert single.report.completed > 0


def test_engines_identical_under_crash_and_restart():
    """The recovery path (WAL replay + state transfer) replays identically."""
    faults = dict(
        crash_specs=[CrashSpec(node=2, time=1.0)],
        restart_specs=[RestartSpec(node=2, time=2.0)],
    )
    single = _run(ENGINE_SINGLE, "pbft", True, **faults)
    sharded = _run(ENGINE_SHARDED, "pbft", True, **faults)
    assert_runs_equivalent(single, sharded, context="crash+restart")
    # The fault must actually have exercised the recovery machinery.
    assert single.report.recoveries and sharded.report.recoveries


def test_engines_identical_under_partition():
    """Partition split/heal (and post-heal reconvergence) replays identically."""
    faults = dict(
        partition_specs=[
            PartitionSpec(groups=((0, 1, 2), (3,)), start_time=1.0, heal_time=2.5)
        ]
    )
    single = _run(ENGINE_SINGLE, "pbft", True, **faults)
    sharded = _run(ENGINE_SHARDED, "pbft", True, **faults)
    assert_runs_equivalent(single, sharded, context="partition")
    assert single.report.partitions["partitions"]


def test_report_records_engine():
    """RunReport.engine names the engine that produced the run."""
    assert _run(ENGINE_SINGLE, "pbft", True).report.engine == ENGINE_SINGLE
    assert _run(ENGINE_SHARDED, "pbft", True).report.engine == ENGINE_SHARDED


def test_wan_regions_identical_across_engines():
    """The geo-latency matrix scenarios also replay bit-identically."""
    config = scenarios.iss_config("pbft", 6, random_seed=3)
    results = {}
    for engine in (ENGINE_SINGLE, ENGINE_SHARDED):
        deployment = Deployment(
            config=config,
            network_config=scenarios.wan_regions(4),
            workload=scenarios._workload(rate=200.0, duration=3.0),
            sim_config=SimConfig(engine=engine),
        )
        results[engine] = deployment.run()
    assert_runs_equivalent(
        results[ENGINE_SINGLE], results[ENGINE_SHARDED], context="wan_regions"
    )
    assert results[ENGINE_SINGLE].report.completed > 0


# ---------------------------------------------------------------- unit level


def test_sharded_executes_in_global_time_order():
    """Events interleave across shards in exact (time, seq) order."""
    sim = ShardedSimulator(seed=1, num_shards=4, lookahead=0.01)
    for endpoint in range(4):
        sim.assign_endpoint(endpoint, endpoint)
    fired = []
    for i, delay in enumerate([0.05, 0.011, 0.032, 0.0007, 0.02, 0.09, 0.0008]):
        shard = i % 4
        sim.schedule_callback_for(shard, delay, lambda d=delay: fired.append(d))
    sim.run_until_idle()
    assert fired == sorted(fired)
    assert sim.events_executed == 7
    assert sim.pending_events() == 0


def test_sharded_ties_execute_in_schedule_order():
    """Same fire time → scheduling order decides, exactly like the single engine."""
    results = {}
    for make in (lambda: Simulator(seed=0), lambda: ShardedSimulator(seed=0, num_shards=2)):
        sim = make()
        if isinstance(sim, ShardedSimulator):
            sim.assign_endpoint(0, 0)
            sim.assign_endpoint(1, 1)
        fired = []
        for tag in range(6):
            sim.schedule_callback(0.5, lambda t=tag: fired.append(t))
        sim.run_until_idle()
        results[type(sim).__name__] = fired
    assert results["Simulator"] == results["ShardedSimulator"] == list(range(6))


def test_sharded_timer_cancel_and_reset():
    """Timers cancel (even across the horizon boundary) and reschedule."""
    sim = ShardedSimulator(seed=0, num_shards=2, lookahead=0.01)
    sim.assign_endpoint(0, 0)
    sim.assign_endpoint(1, 1)
    fired = []
    near = sim.schedule(0.001, lambda: fired.append("near"))
    far = sim.schedule(5.0, lambda: fired.append("far"))
    reset = sim.schedule(1.0, lambda: fired.append("reset"))
    near.cancel()
    far.cancel()
    reset.reset(2.0)
    assert not near.active and not far.active and reset.active
    sim.run_until_idle()
    assert fired == ["reset"]
    assert sim.now == pytest.approx(2.0)


def test_sharded_run_until_stops_clock_at_bound():
    """run(until=...) executes nothing past the bound and pins now to it."""
    sim = ShardedSimulator(seed=0, num_shards=1)
    sim.assign_endpoint(0, 0)
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    sim.schedule(3.0, lambda: fired.append(3.0))
    sim.run(until=2.0)
    assert fired == [1.0]
    assert sim.now == pytest.approx(2.0)
    sim.run_until_idle()
    assert fired == [1.0, 3.0]


def test_sharded_rejects_out_of_range_shard():
    """assign_endpoint validates the shard index."""
    sim = ShardedSimulator(seed=0, num_shards=2)
    with pytest.raises(SimulationError):
        sim.assign_endpoint(0, 2)
    with pytest.raises(SimulationError):
        sim.assign_endpoint(0, -1)


def test_sharded_horizon_advances_across_quiet_gaps():
    """A far-future timer is reached by advancing the horizon, not scanned past."""
    sim = ShardedSimulator(seed=0, num_shards=2, lookahead=0.01)
    sim.assign_endpoint(0, 0)
    sim.assign_endpoint(1, 1)
    fired = []
    sim.schedule_callback_for(1, 60.0, lambda: fired.append("late"))
    sim.run_until_idle()
    assert fired == ["late"]
    assert sim.now == pytest.approx(60.0)
    assert sim.horizon_advances >= 1


def test_sharded_matches_single_on_random_timer_soup():
    """A seeded storm of schedules/cancels/nested schedules runs identically."""
    import random

    def drive(sim, endpoints):
        rng = random.Random(99)
        fired = []
        timers = []

        def spawn(depth):
            if depth > 2:
                return
            delay = rng.choice([0.0004, 0.003, 0.05, 0.4, 2.5])
            endpoint = rng.choice(endpoints)
            cancellable = rng.random() < 0.5
            tag = (round(delay, 4), endpoint, depth, cancellable)
            callback = lambda: (fired.append(tag), spawn(depth + 1))
            if cancellable:
                timers.append(sim.schedule(delay, callback))
            elif hasattr(sim, "schedule_callback_for"):
                sim.schedule_callback_for(endpoint, delay, callback)
            else:
                sim.schedule_callback(delay, callback)

        for _ in range(200):
            spawn(0)
        for i, timer in enumerate(timers):
            if i % 7 == 0:
                timer.cancel()
        sim.run_until_idle()
        return fired, sim.events_executed

    single = Simulator(seed=5)
    sharded = ShardedSimulator(seed=5, num_shards=3, lookahead=0.02)
    for endpoint in range(6):
        sharded.assign_endpoint(endpoint, endpoint % 3)
    assert drive(single, list(range(6))) == drive(sharded, list(range(6)))
