"""Unit tests for request validation and client watermarks (Section 3.7)."""

import pytest

from repro.core.validation import (
    ClientWatermarks,
    RequestValidator,
    request_signing_payload,
    sign_request,
)
from repro.crypto.signatures import KeyStore
from repro.core.types import Request, RequestId
from tests.conftest import make_request


class TestClientWatermarks:
    def test_initial_window(self):
        marks = ClientWatermarks(window=4)
        assert marks.in_window(0, 0)
        assert marks.in_window(0, 3)
        assert not marks.in_window(0, 4)

    def test_window_advances_over_contiguous_prefix(self):
        marks = ClientWatermarks(window=4)
        for ts in range(3):
            marks.note_delivered(0, ts)
        marks.advance_epoch()
        assert marks.low_watermark(0) == 3
        assert marks.in_window(0, 6)
        assert not marks.in_window(0, 7)
        assert not marks.in_window(0, 2)

    def test_gap_blocks_advancement(self):
        marks = ClientWatermarks(window=4)
        marks.note_delivered(0, 0)
        marks.note_delivered(0, 2)  # 1 missing
        marks.advance_epoch()
        assert marks.low_watermark(0) == 1

    def test_out_of_order_delivery_eventually_advances(self):
        marks = ClientWatermarks(window=8)
        for ts in (2, 0, 1, 3):
            marks.note_delivered(0, ts)
        marks.advance_epoch()
        assert marks.low_watermark(0) == 4

    def test_no_advance_before_epoch_transition(self):
        marks = ClientWatermarks(window=4)
        marks.note_delivered(0, 0)
        assert marks.low_watermark(0) == 0

    def test_per_client_isolation(self):
        marks = ClientWatermarks(window=4)
        marks.note_delivered(0, 0)
        marks.advance_epoch()
        assert marks.low_watermark(0) == 1
        assert marks.low_watermark(1) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ClientWatermarks(0)

    def test_window_boundaries_exact(self):
        """Timestamps at low + window - 1 (last in) and low + window (first
        out), both before and after the watermark advances."""
        marks = ClientWatermarks(window=4)
        assert marks.in_window(0, 3)  # low=0: 0 + 4 - 1
        assert not marks.in_window(0, 4)  # low=0: 0 + 4
        for ts in range(3):
            marks.note_delivered(0, ts)
        marks.advance_epoch()
        assert marks.low_watermark(0) == 3
        assert marks.in_window(0, 3 + 4 - 1)
        assert not marks.in_window(0, 3 + 4)
        assert not marks.in_window(0, 2)  # below low is out too

    def test_advance_epoch_reports_moved_windows(self):
        """advance_epoch returns (client, old_low, new_low) for every window
        that moved — the ranges driving per-client state GC."""
        marks = ClientWatermarks(window=8)
        for ts in range(3):
            marks.note_delivered(0, ts)
        marks.note_delivered(1, 1)  # gapped: prefix stays 0
        assert marks.advance_epoch() == [(0, 0, 3)]
        # Nothing moved since: an empty report, no spurious re-advancement.
        assert marks.advance_epoch() == []
        marks.note_delivered(0, 3)
        assert marks.advance_epoch() == [(0, 3, 4)]

    def test_advance_epoch_with_gapped_prefix(self):
        """A gap pins the watermark at the gap even when far newer
        timestamps keep being delivered (the abusive gap-leaver shape)."""
        marks = ClientWatermarks(window=16)
        for ts in (1, 3, 5, 7, 9):  # 0 never delivered
            marks.note_delivered(0, ts)
        assert marks.advance_epoch() == []
        assert marks.low_watermark(0) == 0
        marks.note_delivered(0, 0)  # the gap fills: prefix jumps over 1
        assert marks.advance_epoch() == [(0, 0, 2)]

    def test_out_of_order_sets_dropped_when_prefix_catches_up(self):
        """No empty per-client sets are retained — quiet clients cost no
        memory once their prefix caught up."""
        marks = ClientWatermarks(window=8)
        for ts in (2, 1):
            marks.note_delivered(0, ts)
        assert marks.tracked_gap_clients() == 1
        assert marks.out_of_order_entries() == 2
        marks.note_delivered(0, 0)  # catches up through 1 and 2
        assert marks.tracked_gap_clients() == 0
        assert marks.out_of_order_entries() == 0
        assert marks.low_watermark(0) == 0  # low moves at epochs only
        assert marks.advance_epoch() == [(0, 0, 3)]

    def test_in_order_clients_never_allocate_buffers(self):
        marks = ClientWatermarks(window=8)
        for ts in range(5):
            marks.note_delivered(0, ts)
        assert marks.tracked_gap_clients() == 0

    def test_duplicate_and_stale_deliveries_ignored(self):
        marks = ClientWatermarks(window=8)
        marks.note_delivered(0, 0)
        marks.note_delivered(0, 0)  # duplicate of the prefix head
        marks.note_delivered(0, 0)  # and again, after the prefix advanced
        assert marks.low_watermark(0) == 0
        marks.advance_epoch()
        assert marks.low_watermark(0) == 1
        assert marks.tracked_gap_clients() == 0


class TestRequestValidator:
    def make_validator(self, window=16, verify=True, clients=(0, 1, 2)):
        key_store = KeyStore(deployment_seed=4)
        marks = ClientWatermarks(window=window)
        return key_store, RequestValidator(key_store, clients, marks, verify_signatures=verify)

    def test_valid_signed_request_accepted(self):
        key_store, validator = self.make_validator()
        request = sign_request(key_store, make_request(client=1, timestamp=0))
        assert validator.is_valid(request)
        assert validator.stats.accepted == 1

    def test_unknown_client_rejected(self):
        key_store, validator = self.make_validator()
        request = sign_request(key_store, make_request(client=9, timestamp=0))
        assert not validator.is_valid(request)
        assert validator.stats.unknown_client == 1

    def test_bad_signature_rejected(self):
        key_store, validator = self.make_validator()
        request = make_request(client=1, timestamp=0)  # unsigned
        assert not validator.is_valid(request)
        assert validator.stats.bad_signature == 1

    def test_forged_signature_rejected(self):
        key_store, validator = self.make_validator()
        honest = sign_request(key_store, make_request(client=1, timestamp=0))
        forged = Request(rid=RequestId(2, 0), payload=honest.payload, signature=honest.signature)
        assert not validator.is_valid(forged)

    def test_outside_watermarks_rejected(self):
        key_store, validator = self.make_validator(window=4)
        request = sign_request(key_store, make_request(client=1, timestamp=10))
        assert not validator.is_valid(request)
        assert validator.stats.outside_watermarks == 1

    def test_signature_verification_can_be_disabled(self):
        _, validator = self.make_validator(verify=False)
        assert validator.is_valid(make_request(client=1, timestamp=0))

    def test_add_client(self):
        key_store, validator = self.make_validator()
        request = sign_request(key_store, make_request(client=7, timestamp=0))
        assert not validator.is_valid(request)
        validator.add_client(7)
        assert validator.is_valid(request)

    def test_rejected_counter_totals(self):
        key_store, validator = self.make_validator(window=2)
        validator.is_valid(make_request(client=9))
        validator.is_valid(sign_request(key_store, make_request(client=1, timestamp=5)))
        validator.is_valid(make_request(client=1, timestamp=0))
        assert validator.stats.rejected == 3

    def test_per_client_rejection_counters(self):
        """Rejections are attributed to the claimed client identity; the
        honest accept path never touches the per-client map."""
        key_store, validator = self.make_validator(window=2)
        validator.is_valid(make_request(client=9))  # unknown
        validator.is_valid(sign_request(key_store, make_request(client=1, timestamp=5)))
        validator.is_valid(make_request(client=1, timestamp=0))  # unsigned
        validator.is_valid(sign_request(key_store, make_request(client=2, timestamp=0)))
        by_client = validator.stats.by_client
        assert by_client[9]["unknown_client"] == 1
        assert by_client[1]["outside_watermarks"] == 1
        assert by_client[1]["bad_signature"] == 1
        assert 2 not in by_client  # accepted requests leave no entry

    def test_forget_below_drops_verification_cache(self):
        key_store, validator = self.make_validator(window=16)
        for ts in range(4):
            assert validator.is_valid(
                sign_request(key_store, make_request(client=1, timestamp=ts))
            )
        assert validator.verified_cache_size() == 4
        assert validator.forget_below(1, 0, 3) == 3
        assert validator.verified_cache_size() == 1
        # Dropping an already-collected range is a no-op, not an error.
        assert validator.forget_below(1, 0, 3) == 0

    def test_cache_does_not_shortcut_a_different_payload(self):
        """A reused request id with different payload/signature must be
        re-verified, not served from the rid-keyed cache."""
        key_store, validator = self.make_validator()
        good = sign_request(key_store, make_request(client=1, timestamp=0, payload=b"x"))
        assert validator.is_valid(good)
        twin = Request(rid=good.rid, payload=b"y", signature=good.signature)
        assert not validator.is_valid(twin)
        assert validator.stats.bad_signature == 1
        # The good request still validates from cache afterwards.
        assert validator.is_valid(good)

    def test_signing_payload_covers_identity_and_payload(self):
        a = request_signing_payload(make_request(client=1, timestamp=2, payload=b"x"))
        b = request_signing_payload(make_request(client=1, timestamp=2, payload=b"y"))
        c = request_signing_payload(make_request(client=1, timestamp=3, payload=b"x"))
        assert a != b and a != c
