"""Unit tests for request validation and client watermarks (Section 3.7)."""

import pytest

from repro.core.validation import (
    ClientWatermarks,
    RequestValidator,
    request_signing_payload,
    sign_request,
)
from repro.crypto.signatures import KeyStore
from repro.core.types import Request, RequestId
from tests.conftest import make_request


class TestClientWatermarks:
    def test_initial_window(self):
        marks = ClientWatermarks(window=4)
        assert marks.in_window(0, 0)
        assert marks.in_window(0, 3)
        assert not marks.in_window(0, 4)

    def test_window_advances_over_contiguous_prefix(self):
        marks = ClientWatermarks(window=4)
        for ts in range(3):
            marks.note_delivered(0, ts)
        marks.advance_epoch()
        assert marks.low_watermark(0) == 3
        assert marks.in_window(0, 6)
        assert not marks.in_window(0, 7)
        assert not marks.in_window(0, 2)

    def test_gap_blocks_advancement(self):
        marks = ClientWatermarks(window=4)
        marks.note_delivered(0, 0)
        marks.note_delivered(0, 2)  # 1 missing
        marks.advance_epoch()
        assert marks.low_watermark(0) == 1

    def test_out_of_order_delivery_eventually_advances(self):
        marks = ClientWatermarks(window=8)
        for ts in (2, 0, 1, 3):
            marks.note_delivered(0, ts)
        marks.advance_epoch()
        assert marks.low_watermark(0) == 4

    def test_no_advance_before_epoch_transition(self):
        marks = ClientWatermarks(window=4)
        marks.note_delivered(0, 0)
        assert marks.low_watermark(0) == 0

    def test_per_client_isolation(self):
        marks = ClientWatermarks(window=4)
        marks.note_delivered(0, 0)
        marks.advance_epoch()
        assert marks.low_watermark(0) == 1
        assert marks.low_watermark(1) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ClientWatermarks(0)


class TestRequestValidator:
    def make_validator(self, window=16, verify=True, clients=(0, 1, 2)):
        key_store = KeyStore(deployment_seed=4)
        marks = ClientWatermarks(window=window)
        return key_store, RequestValidator(key_store, clients, marks, verify_signatures=verify)

    def test_valid_signed_request_accepted(self):
        key_store, validator = self.make_validator()
        request = sign_request(key_store, make_request(client=1, timestamp=0))
        assert validator.is_valid(request)
        assert validator.stats.accepted == 1

    def test_unknown_client_rejected(self):
        key_store, validator = self.make_validator()
        request = sign_request(key_store, make_request(client=9, timestamp=0))
        assert not validator.is_valid(request)
        assert validator.stats.unknown_client == 1

    def test_bad_signature_rejected(self):
        key_store, validator = self.make_validator()
        request = make_request(client=1, timestamp=0)  # unsigned
        assert not validator.is_valid(request)
        assert validator.stats.bad_signature == 1

    def test_forged_signature_rejected(self):
        key_store, validator = self.make_validator()
        honest = sign_request(key_store, make_request(client=1, timestamp=0))
        forged = Request(rid=RequestId(2, 0), payload=honest.payload, signature=honest.signature)
        assert not validator.is_valid(forged)

    def test_outside_watermarks_rejected(self):
        key_store, validator = self.make_validator(window=4)
        request = sign_request(key_store, make_request(client=1, timestamp=10))
        assert not validator.is_valid(request)
        assert validator.stats.outside_watermarks == 1

    def test_signature_verification_can_be_disabled(self):
        _, validator = self.make_validator(verify=False)
        assert validator.is_valid(make_request(client=1, timestamp=0))

    def test_add_client(self):
        key_store, validator = self.make_validator()
        request = sign_request(key_store, make_request(client=7, timestamp=0))
        assert not validator.is_valid(request)
        validator.add_client(7)
        assert validator.is_valid(request)

    def test_rejected_counter_totals(self):
        key_store, validator = self.make_validator(window=2)
        validator.is_valid(make_request(client=9))
        validator.is_valid(sign_request(key_store, make_request(client=1, timestamp=5)))
        validator.is_valid(make_request(client=1, timestamp=0))
        assert validator.stats.rejected == 3

    def test_signing_payload_covers_identity_and_payload(self):
        a = request_signing_payload(make_request(client=1, timestamp=2, payload=b"x"))
        b = request_signing_payload(make_request(client=1, timestamp=2, payload=b"y"))
        c = request_signing_payload(make_request(client=1, timestamp=3, payload=b"x"))
        assert a != b and a != c
