"""Dynamic membership battery: reconfiguration at epoch boundaries.

Three layers:

* unit tests of the membership primitives (ConfigTx wire format,
  :class:`~repro.core.membership.MembershipView` folding and quorum
  arithmetic, :class:`~repro.core.membership.MembershipTracker` sealing);
* end-to-end scenarios through the harness — join, removal mid-epoch,
  rolling upgrade of every replica, Byzantine eviction from membership,
  the combined-adversary regression — each gated on the standing
  invariants plus the membership-specific ones
  (:func:`repro.harness.invariants.check_membership`);
* determinism contracts: same-seed runs are bit-identical, the two
  simulator engines are bit-identical under reconfiguration, and static
  runs carry no membership machinery at all.
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    ENGINE_SHARDED,
    ENGINE_SINGLE,
    NetworkConfig,
    SimConfig,
    WorkloadConfig,
)
from repro.core.log import Log
from repro.core.membership import (
    ACTION_ADD,
    ACTION_REMOVE,
    CONFIG_TX_MAGIC,
    ConfigTx,
    MembershipTracker,
    MembershipView,
    decode_config_tx,
    encode_config_tx,
    genesis_view,
)
from repro.core.types import Batch, Request, RequestId
from repro.golden import delivered_trace
from repro.harness.invariants import (
    check_invariants,
    check_membership,
    check_runs_equivalent,
)
from repro.harness.runner import Deployment
from repro.harness.scenarios import (
    DEFAULT_FLUSH_INTERVAL,
    PAYLOAD_BYTES,
    SCALED_BANDWIDTH_BPS,
    byzantine_eviction,
    combined_adversary,
    membership_config,
    membership_join,
    membership_leave,
    rolling_upgrade,
    run_membership_point,
)
from repro.obs import ObsConfig
from repro.sim.faults import MEMBER_ADD, MEMBER_REMOVE, MembershipSpec
from repro.workload.faults import membership_removals

PROTOCOLS = ("pbft", "hotstuff", "raft")


# ---------------------------------------------------------------------- unit
def test_config_tx_roundtrip():
    for action in (ACTION_ADD, ACTION_REMOVE):
        tx = ConfigTx(action=action, node=7)
        assert decode_config_tx(encode_config_tx(tx)) == tx


def test_config_tx_decode_rejects_malformed():
    assert decode_config_tx(b"ordinary payload") is None
    assert decode_config_tx(CONFIG_TX_MAGIC) is None  # empty body
    assert decode_config_tx(CONFIG_TX_MAGIC + b"A" + b"\x00" * 7) is None  # short
    assert decode_config_tx(CONFIG_TX_MAGIC + b"X" + b"\x00" * 8) is None  # action
    assert decode_config_tx(CONFIG_TX_MAGIC + b"A" + b"\x00" * 9) is None  # long


def test_config_tx_validates():
    with pytest.raises(ValueError):
        ConfigTx(action="promote", node=1)
    with pytest.raises(ValueError):
        ConfigTx(action=ACTION_ADD, node=-1)


def test_view_apply_is_idempotent_per_tx():
    """Duplicate ConfigTxs (a retried submission committed twice) no-op."""
    view = MembershipView(nodes=(0, 1, 2, 3))
    grown = view.apply([ConfigTx(ACTION_ADD, 4)])
    assert grown.nodes == (0, 1, 2, 3, 4)
    assert grown.apply([ConfigTx(ACTION_ADD, 4)]) is grown
    shrunk = grown.apply([ConfigTx(ACTION_REMOVE, 0)])
    assert shrunk.nodes == (1, 2, 3, 4)
    assert shrunk.apply([ConfigTx(ACTION_REMOVE, 0)]) is shrunk


def test_view_never_empties():
    view = MembershipView(nodes=(0,))
    assert view.apply([ConfigTx(ACTION_REMOVE, 0)]) is view


def test_view_quorums_intersect_at_every_size():
    """Any two strong quorums must intersect in ≥ f+1 (BFT) / ≥ 1 (CFT) nodes.

    This is the property the genesis ``2f+1`` formula only has at
    n = 3f+1 — dynamic views take every size, so the battery pins the
    general form (the n=3 case is exactly the fork the rolling-upgrade
    scenario hits with the naive arithmetic).
    """
    for n in range(1, 12):
        byz = MembershipView(nodes=tuple(range(n)), byzantine=True)
        assert 2 * byz.strong_quorum - n >= byz.max_faulty + 1
        cft = MembershipView(nodes=tuple(range(n)), byzantine=False)
        assert 2 * cft.strong_quorum - n >= 1
    # The familiar shape is unchanged: n = 3f+1 still yields 2f+1.
    assert MembershipView(nodes=(0, 1, 2, 3)).strong_quorum == 3
    assert MembershipView(nodes=tuple(range(7))).strong_quorum == 5


def _batch(client: int, timestamp: int, payload: bytes) -> Batch:
    return Batch.of([Request(rid=RequestId(client, timestamp), payload=payload)])


def _tracker(epoch_length: int = 4) -> MembershipTracker:
    config = membership_config("pbft", 4, epoch_length=epoch_length)
    return MembershipTracker(config, Log())


def test_tracker_seals_config_txs_in_order():
    tracker = _tracker()
    log = tracker.log
    log.commit(0, _batch(0, 1, encode_config_tx(ConfigTx(ACTION_ADD, 4))), 0, 0.0)
    log.commit(1, _batch(1, 1, b"app payload"), 0, 0.0)
    log.commit(2, _batch(0, 2, encode_config_tx(ConfigTx(ACTION_REMOVE, 4))), 0, 0.0)
    log.commit(3, _batch(1, 2, b"more app"), 0, 0.0)
    added, removed = tracker.seal_epoch(0)
    # add then remove within one epoch cancels before activation
    assert (added, removed) == ((), ())
    assert tracker.view_for(1).nodes == (0, 1, 2, 3)
    assert [tx.action for _e, tx in tracker.committed_txs] == [
        ACTION_ADD, ACTION_REMOVE,
    ]


def test_tracker_activation_is_exactly_once():
    tracker = _tracker()
    log = tracker.log
    payload = encode_config_tx(ConfigTx(ACTION_ADD, 4))
    # The same ConfigTx committed twice (retried submission, two rids).
    log.commit(0, _batch(0, 1, payload), 0, 0.0)
    log.commit(1, _batch(0, 2, payload), 0, 0.0)
    log.commit(2, _batch(1, 1, b"app"), 0, 0.0)
    log.commit(3, _batch(1, 2, b"app"), 0, 0.0)
    assert tracker.seal_epoch(0) == ((4,), ())
    assert tracker.view_for(1).nodes == (0, 1, 2, 3, 4)
    # Sealing again is a no-op — activation happened exactly once.
    assert tracker.seal_epoch(0) == ((), ())
    assert tracker.activations == [(1, (4,), ())]


def test_tracker_rebuilt_log_derives_identical_views():
    """The view sequence is a pure function of the committed log prefix —
    a node that reconstructs its log (WAL replay, state transfer) derives
    the same views without any extra agreement."""
    first = _tracker()
    log = first.log
    log.commit(0, _batch(0, 1, encode_config_tx(ConfigTx(ACTION_ADD, 4))), 0, 0.0)
    for sn in range(1, 8):
        log.commit(sn, _batch(1, sn, b"app"), sn // 4, 0.0)
    first.seal_epoch(0)
    first.seal_epoch(1)
    rebuilt = MembershipTracker(first.config, log)
    rebuilt.seal_epoch(0)
    rebuilt.seal_epoch(1)
    for epoch in range(3):
        assert rebuilt.view_for(epoch).nodes == first.view_for(epoch).nodes


def test_genesis_view_matches_config():
    config = membership_config("raft", 5)
    view = genesis_view(config)
    assert view.nodes == (0, 1, 2, 3, 4)
    assert view.byzantine == config.byzantine is False


# ----------------------------------------------------------------- scenarios
def _assert_clean(row):
    assert row["violations"] == []
    assert row["all_complete"]
    assert row["prefixes_identical"]


def test_join_activates_at_epoch_boundary():
    row = membership_join("pbft", duration=12.0)
    _assert_clean(row)
    assert row["final_view"] == [0, 1, 2, 3, 4]
    assert row["all_joined"] and row["time_to_join_max"] > 0.0
    assert row["config_txs_committed"] == 1
    # ConfigTxs activate at the NEXT epoch boundary, never retroactively.
    assert all(a["epoch"] >= 1 for a in row["activations"])


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_quorum_recomputation_on_join_and_leave(protocol):
    """n → n+1 and n → n-1 recompute n, f and the quorums on every node."""
    result, row = run_membership_point(
        protocol, 4,
        membership_specs=[MembershipSpec(node=4, action=MEMBER_ADD, time=2.0)],
        rate=300.0, duration=10.0,
    )
    assert row["violations"] == []
    grown = [n.membership.current_view() for n in result.nodes if not n.crashed]
    assert all(v.num_nodes == 5 for v in grown)
    expected = MembershipView(nodes=(0, 1, 2, 3, 4), byzantine=grown[0].byzantine)
    assert all(v.strong_quorum == expected.strong_quorum for v in grown)

    result, row = run_membership_point(
        protocol, 4,
        membership_specs=membership_removals([3], start=2.0),
        rate=300.0, duration=10.0,
    )
    assert row["violations"] == []
    shrunk = [
        n.membership.current_view()
        for n in result.nodes
        if not n.crashed and n.node_id != 3
    ]
    assert all(v.num_nodes == 3 for v in shrunk)
    expected = MembershipView(nodes=(0, 1, 2), byzantine=shrunk[0].byzantine)
    assert all(v.strong_quorum == expected.strong_quorum for v in shrunk)


def test_new_node_bootstrap_lands_prefix_identical():
    result, row = run_membership_point(
        "pbft", 4,
        membership_specs=[MembershipSpec(node=4, action=MEMBER_ADD, time=3.0)],
        rate=400.0, duration=15.0,
    )
    assert row["all_joined"]
    joiner = result.nodes[4]
    reference = max(
        (n for n in result.nodes if not n.crashed), key=lambda n: n.log.first_undelivered
    )
    trace = delivered_trace(joiner)
    assert len(trace) > 0
    assert trace == delivered_trace(reference)[: len(trace)]
    assert check_invariants(result) == []


def test_removal_during_inflight_epoch():
    """A remove-ConfigTx submitted mid-epoch activates only at the boundary:
    the victim finishes the epoch that committed it, retires exactly at the
    boundary, and its delivered prefix stays on the agreed order."""
    result, row = run_membership_point(
        "pbft", 4,
        membership_specs=membership_removals([3], start=4.0),
        rate=400.0, duration=15.0,
    )
    assert row["violations"] == []
    victim = result.nodes[3]
    assert victim.retired and victim.crashed
    activation = next(a for a in row["activations"] if 3 in a["removed"])
    epoch_length = victim.config.epoch_length
    assert victim.log.first_undelivered == activation["epoch"] * epoch_length
    assert check_membership(result) == []


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_rolling_upgrade_every_replica(protocol):
    """The acceptance gate: remove+re-add all n replicas in turn with 100 %
    correct-client completion and delivered-prefix identity throughout."""
    row = rolling_upgrade(protocol)
    _assert_clean(row)
    assert row["upgrade_complete"], row
    assert row["upgraded"] == row["nodes"]
    assert sorted(row["final_view"]) == list(range(row["nodes"]))


def test_byzantine_replica_evicted_from_membership():
    row = byzantine_eviction("pbft")
    _assert_clean(row)
    assert row["evicted_from_membership"]
    assert row["detection_time"] >= 0.0
    assert row["adversary"] not in row["final_view"]


def test_combined_adversary_regression():
    """Abusive clients + Byzantine replica in one run: the replica ends
    evicted from membership and every correct client still completes."""
    row = combined_adversary("pbft")
    assert row["violations"] == []
    assert row["correct_all_complete"]
    assert row["prefixes_identical"]
    assert row["evicted_from_membership"]


# -------------------------------------------------------------- determinism
def _deployment(engine: str, flush: float = DEFAULT_FLUSH_INTERVAL, seed: int = 7):
    config = membership_config("pbft", 4, random_seed=seed)
    return Deployment(
        config,
        network_config=NetworkConfig(
            bandwidth_bps=SCALED_BANDWIDTH_BPS,
            num_datacenters=4,
            batch_flush_interval=flush,
        ),
        workload=WorkloadConfig(
            num_clients=6, total_rate=400.0, duration=10.0, payload_size=PAYLOAD_BYTES
        ),
        membership_specs=[
            MembershipSpec(node=4, action=MEMBER_ADD, time=2.0),
            MembershipSpec(node=0, action=MEMBER_REMOVE, time=6.0),
        ],
        recovery_poll=0.25,
        probe_stagger=0.5,
        sim_config=SimConfig(engine=engine),
        obs=ObsConfig.disabled(),
        drain_time=6.0,
    )


def test_same_seed_reconfiguration_is_deterministic():
    a = _deployment(ENGINE_SINGLE).run()
    b = _deployment(ENGINE_SINGLE).run()
    assert check_runs_equivalent(a, b) == []
    assert a.report.membership["final_view"] == [1, 2, 3, 4]


def test_engines_bit_identical_under_reconfiguration():
    single = _deployment(ENGINE_SINGLE).run()
    sharded = _deployment(ENGINE_SHARDED).run()
    assert check_invariants(single) == []
    assert check_invariants(sharded) == []
    assert check_runs_equivalent(single, sharded) == []
    assert single.report.membership["final_view"] == sharded.report.membership["final_view"]


def test_reconfiguration_with_batching_on_and_off():
    """Wire batching changes the schedule, never the outcome: both runs are
    clean and converge to the same final view."""
    batched = _deployment(ENGINE_SINGLE, flush=DEFAULT_FLUSH_INTERVAL).run()
    unbatched = _deployment(ENGINE_SINGLE, flush=0.0).run()
    for result in (batched, unbatched):
        assert check_invariants(result) == []
        assert result.report.membership["final_view"] == [1, 2, 3, 4]
        assert all(
            c.requests_completed == c.requests_submitted for c in result.clients
        )


def test_static_runs_carry_no_membership_machinery():
    """Without membership specs the machinery is fully disabled: no admin
    client, no tracker, an empty membership report — the schedule-neutrality
    the golden traces pin."""
    config = membership_config("pbft", 4)
    deployment = Deployment(
        config,
        network_config=NetworkConfig(
            bandwidth_bps=SCALED_BANDWIDTH_BPS, batch_flush_interval=0.0
        ),
        workload=WorkloadConfig(
            num_clients=4, total_rate=200.0, duration=3.0, payload_size=PAYLOAD_BYTES
        ),
        obs=ObsConfig.disabled(),
    )
    assert deployment.admin_client is None
    result = deployment.run()
    assert result.report.membership == {}
    assert all(node.membership is None for node in result.nodes)
