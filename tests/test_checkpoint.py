"""Unit tests for the checkpointing sub-protocol (Section 3.5)."""

import pytest

from repro.core.checkpoint import (
    CheckpointMsg,
    CheckpointProtocol,
    checkpoint_signing_payload,
    epoch_log_root,
)
from repro.core.config import ISSConfig
from repro.core.log import Log
from repro.core.types import NIL
from repro.crypto.signatures import KeyStore
from tests.conftest import make_batch, make_request


def make_complete_log(epoch_length=4):
    log = Log()
    for sn in range(epoch_length):
        log.commit(sn, make_batch(make_request(timestamp=sn)), epoch=0, now=0.0)
    return log


class Harness:
    """A set of checkpoint protocol instances wired directly together."""

    def __init__(self, num_nodes=4, epoch_length=4):
        self.config = ISSConfig(num_nodes=num_nodes, epoch_length=epoch_length, batch_rate=None)
        self.key_store = KeyStore(deployment_seed=5)
        self.stable = {n: {} for n in range(num_nodes)}
        self.protocols = {}
        self.outbox = []
        for node in range(num_nodes):
            self.protocols[node] = CheckpointProtocol(
                node_id=node,
                config=self.config,
                key_store=self.key_store,
                broadcast_fn=lambda msg, node=node: self.outbox.append((node, msg)),
                on_stable=lambda epoch, cert, node=node: self.stable[node].__setitem__(epoch, cert),
            )

    def flush(self):
        pending, self.outbox = self.outbox, []
        for sender, message in pending:
            for node, protocol in self.protocols.items():
                if node != sender:
                    protocol.handle_message(sender, message)


class TestEpochLogRoot:
    def test_root_depends_on_entries(self):
        config_len = 4
        log_a = make_complete_log(config_len)
        log_b = Log()
        for sn in range(config_len):
            log_b.commit(sn, NIL, epoch=0, now=0.0)
        assert epoch_log_root(log_a, 0, config_len) != epoch_log_root(log_b, 0, config_len)

    def test_root_deterministic(self):
        assert epoch_log_root(make_complete_log(), 0, 4) == epoch_log_root(make_complete_log(), 0, 4)


class TestCheckpointProtocol:
    def test_quorum_creates_stable_checkpoint(self):
        harness = Harness()
        log = make_complete_log()
        for node, protocol in harness.protocols.items():
            protocol.local_epoch_complete(0, log)
        harness.flush()
        for node in range(4):
            assert 0 in harness.stable[node]
            cert = harness.stable[node][0]
            assert len(cert.signatures) >= harness.config.strong_quorum
            assert cert.last_sn == 3

    def test_no_stable_checkpoint_below_quorum(self):
        harness = Harness()
        log = make_complete_log()
        # Only one node announces: nobody reaches 2f+1 = 3.
        harness.protocols[0].local_epoch_complete(0, log)
        harness.flush()
        assert all(0 not in harness.stable[n] for n in range(4))

    def test_local_epoch_complete_is_idempotent(self):
        harness = Harness()
        log = make_complete_log()
        harness.protocols[0].local_epoch_complete(0, log)
        harness.protocols[0].local_epoch_complete(0, log)
        assert len(harness.outbox) == 1

    def test_bad_signature_ignored(self):
        harness = Harness()
        log = make_complete_log()
        root = epoch_log_root(log, 0, 4)
        forged = CheckpointMsg(epoch=0, last_sn=3, log_root=root, sender=1, signature=b"x" * 64)
        harness.protocols[0].handle_message(1, forged)
        assert harness.protocols[0].stable_checkpoint(0) is None

    def test_sender_mismatch_ignored(self):
        harness = Harness()
        log = make_complete_log()
        payload = checkpoint_signing_payload(0, 3, epoch_log_root(log, 0, 4))
        message = CheckpointMsg(
            epoch=0, last_sn=3, log_root=epoch_log_root(log, 0, 4),
            sender=2, signature=harness.key_store.sign(2, payload),
        )
        harness.protocols[0].handle_message(1, message)  # claimed sender 2, channel says 1
        assert harness.protocols[0].stable_checkpoint(0) is None

    def test_mismatching_roots_do_not_combine(self):
        harness = Harness()
        log = make_complete_log()
        other_log = Log()
        for sn in range(4):
            other_log.commit(sn, NIL, epoch=0, now=0.0)
        harness.protocols[0].local_epoch_complete(0, log)
        harness.protocols[1].local_epoch_complete(0, other_log)
        harness.protocols[2].local_epoch_complete(0, other_log)
        harness.flush()
        # 2 matching + 1 different: nobody has a 3-quorum on a single root.
        assert all(0 not in harness.stable[n] for n in range(4))

    def test_certificate_verification(self):
        harness = Harness()
        log = make_complete_log()
        for protocol in harness.protocols.values():
            protocol.local_epoch_complete(0, log)
        harness.flush()
        cert = harness.stable[0][0]
        assert harness.protocols[1].verify_certificate(cert)
        # Tampered certificate fails.
        from dataclasses import replace
        bad = replace(cert, last_sn=99) if hasattr(cert, "__dataclass_fields__") else cert
        assert not harness.protocols[1].verify_certificate(bad)

    def test_latest_stable_epoch(self):
        harness = Harness()
        log = make_complete_log()
        assert harness.protocols[0].latest_stable_epoch() is None
        for protocol in harness.protocols.values():
            protocol.local_epoch_complete(0, log)
        harness.flush()
        assert harness.protocols[0].latest_stable_epoch() == 0
