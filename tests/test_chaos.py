"""Tests for the network-chaos subsystem: partitions, degraded links,
partition-aware recovery and the client retry loop.

Unit layers first (spec validation, network-level drop/duplicate/flap/
retransmit semantics, interaction with wire batching), then small
integration runs pinning the reconvergence machinery (heal-triggered
catch-up, client retry completion, view-change jitter determinism).
"""

import pytest

from repro.core.config import ConfigError, ISSConfig, NetworkConfig, WorkloadConfig
from repro.core.client import Client
from repro.crypto.signatures import KeyStore
from repro.harness.runner import Deployment
from repro.sim.batching import register_batchable
from repro.sim.chaos import (
    DROP_CAUSES,
    LinkFaultSpec,
    PartitionSpec,
    symmetric_split,
)
from repro.sim.faults import FaultInjector
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.workload.faults import (
    bridge_partition,
    flapping_links,
    lossy_links,
    minority_partition,
    one_way_blocks,
)


def build_network(num_nodes=4, **overrides):
    config = NetworkConfig(jitter=0.0, **overrides)
    sim = Simulator(seed=3)
    return sim, Network(sim, config, LatencyModel(config, num_nodes))


class Inbox:
    def __init__(self):
        self.messages = []

    def __call__(self, src, message):
        self.messages.append((src, message))


class TestPartitionSpecValidation:
    def test_needs_two_groups(self):
        with pytest.raises(ValueError):
            PartitionSpec(groups=((0, 1, 2),), start_time=1.0, heal_time=2.0)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            PartitionSpec(groups=((0,), ()), start_time=1.0, heal_time=2.0)

    def test_rejects_endpoint_in_two_groups(self):
        with pytest.raises(ValueError):
            PartitionSpec(groups=((0, 1), (1, 2)), start_time=1.0, heal_time=2.0)

    def test_rejects_bridge_inside_a_group(self):
        with pytest.raises(ValueError):
            PartitionSpec(
                groups=((0, 1), (2,)), start_time=1.0, heal_time=2.0, bridges=(2,)
            )

    def test_heal_must_follow_start(self):
        with pytest.raises(ValueError):
            PartitionSpec(groups=((0,), (1,)), start_time=2.0, heal_time=2.0)

    def test_injector_rejects_overlapping_partitions(self):
        sim, net = build_network()
        injector = FaultInjector(sim, net)
        injector.schedule_partition(symmetric_split((0, 1), (2, 3), 1.0, 5.0))
        with pytest.raises(ValueError):
            injector.schedule_partition(symmetric_split((0, 2), (1, 3), 4.0, 6.0))
        # Non-overlapping back-to-back schedules are fine.
        injector.schedule_partition(symmetric_split((0, 1), (2, 3), 5.0, 6.0))


class TestLinkFaultSpecValidation:
    def test_needs_distinct_endpoints(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(src=1, dst=1, block=True)

    def test_needs_an_effect(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(src=0, dst=1)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(src=0, dst=1, loss_rate=1.0)

    def test_flap_up_bounds(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(src=0, dst=1, flap_period=2.0, flap_up=1.0)

    def test_retransmit_must_be_non_negative(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(src=0, dst=1, loss_rate=0.5, retransmit=-1.0)

    def test_retransmit_cannot_cross_a_block(self):
        # A one-way block is routing-level unreachability, not packet loss;
        # retransmission must not be able to tunnel through it.
        with pytest.raises(ValueError):
            LinkFaultSpec(src=0, dst=1, block=True, retransmit=0.5)

    def test_stalled_catchup_grace_validation(self):
        with pytest.raises(ConfigError):
            ISSConfig(num_nodes=4, stalled_catchup_grace=-1.0).validate()


class TestLinkFaultSemantics:
    def test_one_way_block_is_directional(self):
        sim, net = build_network()
        fwd, rev = Inbox(), Inbox()
        net.register(0, rev)
        net.register(1, fwd)
        net.install_link_fault(LinkFaultSpec(src=0, dst=1, block=True))
        net.send(0, 1, "blocked")
        net.send(1, 0, "open")
        sim.run()
        assert fwd.messages == []
        assert rev.messages == [(1, "open")]
        assert net.stats.dropped_by_cause["link-fault"] == 1

    def test_loss_is_deterministic_per_seed(self):
        def drop_pattern():
            sim, net = build_network()
            inbox = Inbox()
            net.register(0, Inbox())
            net.register(1, inbox)
            net.install_link_fault(LinkFaultSpec(src=0, dst=1, loss_rate=0.5, seed=7))
            for i in range(50):
                net.send(0, 1, i)
            sim.run()
            return [msg for _, msg in inbox.messages]

        first, second = drop_pattern(), drop_pattern()
        assert first == second
        assert 0 < len(first) < 50

    def test_duplication_delivers_extra_copies(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        fault = net.install_link_fault(
            LinkFaultSpec(src=0, dst=1, duplicate_rate=1.0)
        )
        for i in range(5):
            net.send(0, 1, i)
        sim.run()
        assert len(inbox.messages) == 10
        assert fault.payloads_duplicated == 5

    def test_flapping_is_a_pure_function_of_time(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        # Up for [0, 1), down for [1, 2), per 2 s cycle anchored at t=0.
        net.install_link_fault(
            LinkFaultSpec(src=0, dst=1, flap_period=2.0, flap_up=0.5)
        )
        sim.schedule_at(0.5, lambda: net.send(0, 1, "up-phase"))
        sim.schedule_at(1.5, lambda: net.send(0, 1, "down-phase"))
        sim.schedule_at(2.5, lambda: net.send(0, 1, "up-again"))
        sim.run()
        assert [msg for _, msg in inbox.messages] == ["up-phase", "up-again"]

    def test_retransmit_recovers_every_lost_payload(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        fault = net.install_link_fault(
            LinkFaultSpec(src=0, dst=1, loss_rate=0.6, retransmit=0.2, seed=11)
        )
        for i in range(40):
            net.send(0, 1, i)
        sim.run()
        # Loss degrades latency, never correctness: every payload arrives.
        assert sorted(msg for _, msg in inbox.messages) == list(range(40))
        assert fault.payloads_retransmitted > 0
        assert fault.payloads_retransmitted == fault.payloads_dropped

    def test_bridge_passes_cross_group_traffic(self):
        sim, net = build_network()
        inboxes = {n: Inbox() for n in range(3)}
        for n, inbox in inboxes.items():
            net.register(n, inbox)
        net.partition([(0,), (1,)], bridges=(2,))
        net.send(0, 1, "cross")
        net.send(0, 2, "to-bridge")
        net.send(2, 1, "from-bridge")
        sim.run()
        assert inboxes[1].messages == [(2, "from-bridge")]
        assert inboxes[2].messages == [(0, "to-bridge")]
        assert net.stats.dropped_by_cause["partition"] == 1

    def test_drop_causes_are_attributed_separately(self):
        sim, net = build_network()
        for n in range(4):
            net.register(n, Inbox())
        net.install_link_fault(LinkFaultSpec(src=0, dst=1, block=True))
        net.partition([(0, 1), (2,)])
        net.crash(3)
        net.send(0, 1, "link")
        net.send(0, 2, "partition")
        net.send(0, 3, "crash")
        sim.run()
        by_cause = net.stats.dropped_by_cause
        assert by_cause["link-fault"] == 1
        assert by_cause["partition"] == 1
        assert by_cause["crash"] == 1
        assert net.stats.messages_dropped == 3
        assert set(by_cause) <= set(DROP_CAUSES)


class _BatchableProbe:
    """Tiny batchable payload for the batching-interaction tests."""

    def __init__(self, value):
        self.value = value

    def wire_size(self):
        return 8


register_batchable(_BatchableProbe)


class TestBatchingInteraction:
    """Chaos is payload-accurate: wire batching can neither hide nor
    amplify drops, and faults installed mid-run apply to payloads already
    heading for the batcher."""

    def _run(self, flush_interval, fault=None, install_at=None, count=20):
        sim, net = build_network(batch_flush_interval=flush_interval)
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        if fault is not None and install_at is None:
            net.install_link_fault(fault)
        elif fault is not None:
            sim.schedule_at(install_at, lambda: net.install_link_fault(fault))
        for i in range(count):
            sim.schedule_at(0.1 * i, lambda i=i: net.send(0, 1, _BatchableProbe(i)))
        sim.run()
        return net, [msg.value for _, msg in inbox.messages]

    def test_block_drops_per_payload_with_batching_on(self):
        fault = LinkFaultSpec(src=0, dst=1, block=True)
        net_off, got_off = self._run(0.0, fault)
        net_on, got_on = self._run(0.05, fault)
        assert got_off == got_on == []
        # Every payload is counted individually, batched or not.
        assert net_off.stats.dropped_by_cause["link-fault"] == 20
        assert net_on.stats.dropped_by_cause["link-fault"] == 20

    def test_loss_pattern_identical_batched_and_unbatched(self):
        # Drop decisions run per payload *before* the batching detour, from
        # a per-fault RNG — so the same seed drops the same payloads
        # whether or not the survivors then coalesce into frames.
        fault_args = dict(src=0, dst=1, loss_rate=0.4, seed=13)
        _, got_off = self._run(0.0, LinkFaultSpec(**fault_args))
        _, got_on = self._run(0.05, LinkFaultSpec(**fault_args))
        assert got_off == got_on
        assert 0 < len(got_on) < 20

    def test_mid_run_install_applies_to_later_payloads(self):
        sim, net = build_network(batch_flush_interval=0.05)
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        fault = LinkFaultSpec(src=0, dst=1, block=True)
        sim.schedule_at(0.45, lambda: net.install_link_fault(fault))
        # Two payloads per tick so the survivors genuinely coalesce.
        for i in range(20):
            sim.schedule_at(
                0.1 * (i // 2), lambda i=i: net.send(0, 1, _BatchableProbe(i))
            )
        sim.run()
        got = [msg.value for _, msg in inbox.messages]
        # Payloads sent before the install (t < 0.45 → values 0..9) arrive;
        # everything after hits the block at enqueue time.
        assert got == list(range(10))
        assert net.stats.dropped_by_cause["link-fault"] == 10
        assert net.stats.batches_sent > 0

    def test_partition_drops_counted_per_payload_in_frames(self):
        sim, net = build_network(batch_flush_interval=0.05)
        net.register(0, Inbox())
        net.register(1, Inbox())
        net.partition([(0,), (1,)])
        for i in range(10):
            net.send(0, 1, _BatchableProbe(i))
        sim.run()
        assert net.stats.dropped_by_cause["partition"] == 10


def chaos_test_config(num_nodes=4, **overrides):
    from repro.harness.scenarios import chaos_config

    return chaos_config("pbft", num_nodes, random_seed=5, **overrides)


def chaos_test_network():
    from repro.harness.scenarios import scaled_network

    return scaled_network()


def run_partitioned(config=None, partition=(2.0, 6.0), duration=8.0, **kwargs):
    config = config or chaos_test_config()
    deployment = Deployment(
        config,
        network_config=chaos_test_network(),
        workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=duration),
        partition_specs=minority_partition(
            1, config.num_nodes, partition[0], partition[1]
        ),
        drain_time=10.0,
        **kwargs,
    )
    return deployment, deployment.run()


class TestPartitionRecovery:
    def test_heal_triggers_immediate_catchup(self):
        # Regression: healing used to be a pure connectivity change — the
        # cut-off node sat on its stale epoch until an epoch timer fired.
        # The heal hook must detect it as a laggard and state-transfer it
        # back to the frontier, recording time_to_reconverge.
        deployment, result = run_partitioned()
        records = result.report.partitions["partitions"]
        assert len(records) == 1
        record = records[0]
        isolated = deployment.config.num_nodes - 1
        assert isolated in record["laggards"]
        assert record["time_to_reconverge"] >= 0.0
        frontiers = {n.log.first_undelivered for n in result.nodes}
        assert len(frontiers) == 1

    def test_clients_complete_through_partition_via_retry(self):
        _, result = run_partitioned()
        assert all(
            c.requests_completed == c.requests_submitted for c in result.clients
        )
        assert result.report.partitions["client_retries_total"] > 0

    def test_bridge_partition_reconverges(self):
        # Neither half has a quorum alone (n=5, quorum 3, split 2|1|2):
        # ordering degrades for the window, then the heal hook plus the
        # view-change recovery machinery pull every node back.
        config = chaos_test_config(num_nodes=5)
        deployment = Deployment(
            config,
            network_config=chaos_test_network(),
            workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=10.0),
            partition_specs=bridge_partition(5, 2, 2.0, 6.0),
            drain_time=15.0,
        )
        result = deployment.run()
        record = result.report.partitions["partitions"][0]
        assert record["time_to_reconverge"] >= 0.0
        assert all(
            c.requests_completed == c.requests_submitted for c in result.clients
        )
        from repro.harness.scenarios import prefixes_identical

        assert prefixes_identical(result.nodes)
        # The healed minority reached (at least) the frontier the cluster
        # held when reconvergence was detected; only requests still in
        # flight at the cut-off may separate the logs.
        frontier = max(n.log.first_undelivered for n in result.nodes)
        assert min(n.log.first_undelivered for n in result.nodes) >= frontier - 4

    def test_partition_drops_surface_in_report(self):
        _, result = run_partitioned()
        partitions = result.report.partitions
        assert partitions["drops_by_cause"]["partition"] > 0
        assert partitions["drops_by_cause"]["link-fault"] == 0

    def test_asymmetric_block_absorbed_without_recovery(self):
        config = chaos_test_config()
        deployment = Deployment(
            config,
            network_config=chaos_test_network(),
            workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=8.0),
            link_fault_specs=one_way_blocks([(0, 3)], 2.0, 6.0),
            drain_time=10.0,
        )
        result = deployment.run()
        assert all(
            c.requests_completed == c.requests_submitted for c in result.clients
        )
        assert result.report.partitions["drops_by_cause"]["link-fault"] > 0

    def test_flapping_link_with_retransmit_keeps_liveness(self):
        config = chaos_test_config()
        deployment = Deployment(
            config,
            network_config=chaos_test_network(),
            workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=8.0),
            link_fault_specs=flapping_links(
                [(0, 3), (3, 0)], flap_period=2.0, retransmit=0.5, seed=5
            ),
            drain_time=10.0,
        )
        result = deployment.run()
        assert all(
            c.requests_completed == c.requests_submitted for c in result.clients
        )
        faults = result.report.partitions["link_faults"]
        assert sum(f["payloads_retransmitted"] for f in faults) > 0

    def test_lossy_link_stats_surface_per_fault(self):
        config = chaos_test_config()
        deployment = Deployment(
            config,
            network_config=chaos_test_network(),
            workload=WorkloadConfig(num_clients=4, total_rate=100.0, duration=6.0),
            link_fault_specs=lossy_links(
                [(2, 1)], loss_rate=0.3, retransmit=0.5, seed=9
            ),
            drain_time=8.0,
        )
        result = deployment.run()
        faults = result.report.partitions["link_faults"]
        assert len(faults) == 1
        assert faults[0]["src"] == 2 and faults[0]["dst"] == 1
        assert faults[0]["payloads_dropped"] > 0
        assert faults[0]["payloads_retransmitted"] == faults[0]["payloads_dropped"]


class TestDeterminism:
    def test_partitioned_run_is_deterministic(self):
        # Jittered view-change timers, retry jitter, loss RNG — all seeded:
        # the same chaos schedule must replay to the same event count.
        def fingerprint():
            deployment, result = run_partitioned()
            return (
                deployment.sim.events_executed,
                deployment.network.stats.messages_sent,
                [n.log.first_undelivered for n in result.nodes],
            )

        assert fingerprint() == fingerprint()

    def test_chaos_off_is_the_default(self):
        # All chaos machinery must be opt-in: a default config schedules no
        # retries, no jitter draws, no grace timers (golden traces pin the
        # resulting schedules bit-for-bit elsewhere).
        config = ISSConfig(num_nodes=4, protocol="pbft", epoch_length=16)
        assert config.client_retry_timeout == 0.0
        assert config.view_change_jitter == 0.0
        assert config.stalled_catchup_grace == 0.0
        assert config.vc_recovery is False


class TestClientRetry:
    def _client(self, **overrides):
        config = ISSConfig(
            num_nodes=4, epoch_length=8, batch_rate=None, **overrides
        )
        sim = Simulator(seed=9)
        net_config = NetworkConfig(jitter=0.0)
        network = Network(sim, net_config, LatencyModel(net_config, 4))
        for node in range(4):
            network.register(node, Inbox())
        client = Client(
            client_id=0,
            config=config,
            sim=sim,
            network=network,
            key_store=KeyStore(deployment_seed=8),
        )
        return sim, client

    def test_retries_off_by_default(self):
        sim, client = self._client()
        client.submit(b"payload")
        sim.run(until=30.0)
        assert client.requests_retried == 0
        assert not client._retry_timers

    def test_unanswered_request_is_retried_with_backoff(self):
        sim, client = self._client(
            client_retry_timeout=1.0,
            client_retry_backoff=2.0,
            client_retry_max_timeout=4.0,
            client_retry_jitter=0.0,
        )
        client.submit(b"payload")
        # No node ever answers: timeouts fire at 1, 3, 7, 11, 15, ... s
        # (1 + 2 + 4 + 4 + 4: exponential backoff capped at 4 s).
        sim.run(until=16.0)
        assert client.requests_retried == 5

    def test_backoff_delay_grows_and_caps(self):
        _, client = self._client(
            client_retry_timeout=1.0,
            client_retry_backoff=2.0,
            client_retry_max_timeout=4.0,
            client_retry_jitter=0.0,
        )
        delays = [client._retry_delay(attempt) for attempt in range(5)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_stretches_but_stays_bounded(self):
        _, client = self._client(
            client_retry_timeout=1.0,
            client_retry_backoff=2.0,
            client_retry_max_timeout=4.0,
            client_retry_jitter=0.5,
        )
        for attempt, base in ((0, 1.0), (1, 2.0), (2, 4.0)):
            delay = client._retry_delay(attempt)
            assert base <= delay <= base * 1.5

    def test_completion_cancels_the_retry_timer(self):
        from repro.core.messages import ClientResponseMsg

        sim, client = self._client(
            client_retry_timeout=1.0,
            client_retry_backoff=2.0,
            client_retry_max_timeout=4.0,
            client_retry_jitter=0.0,
        )
        request = client.submit(b"payload")
        for node in range(client.config.weak_quorum):
            client.on_message(node, ClientResponseMsg(rid=request.rid, sn=0, node=node))
        sim.run(until=10.0)
        assert client.requests_completed == 1
        assert client.requests_retried == 0
        assert not client._retry_timers
