"""Shared invariant checkers for the test suite.

Thin re-export: the implementations live in
:mod:`repro.harness.invariants` so the smoke gates and the fuzzer
(``python -m repro.fuzz_smoke``) share the exact same definitions with
the tests.  Import from here in test files::

    from invariants import assert_invariants, assert_runs_equivalent
"""

from repro.harness.invariants import (  # noqa: F401
    assert_invariants,
    assert_runs_equivalent,
    check_completed_within_submitted,
    check_invariants,
    check_no_double_delivery,
    check_prefix_identity,
    check_rejections_cover_forgeries,
    check_runs_equivalent,
    delivered_rids,
)
