"""Tests for the reference SB-from-consensus construction (Algorithm 5)."""

import pytest

from repro.consensus.sb_consensus import ConsensusSB
from repro.core.types import SegmentDescriptor, is_nil
from tests.conftest import SBTestBed


def make_bed(num_nodes=4, leader=0, seq_nrs=(0, 1, 2, 3), leader_timeout=3.0, **kwargs) -> SBTestBed:
    segment = SegmentDescriptor(epoch=0, leader=leader, seq_nrs=tuple(seq_nrs), buckets=(0,))
    return SBTestBed(
        num_nodes,
        lambda ctx: ConsensusSB(ctx, leader_timeout=leader_timeout),
        segment=segment,
        **kwargs,
    )


class TestSBProperties:
    def test_sb3_termination_fault_free(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=20.0)
        bed.assert_termination()

    def test_sb2_agreement(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=20.0)
        bed.assert_agreement()

    def test_sb1_integrity_values_come_from_sender(self):
        bed = make_bed()
        fed = bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=20.0)
        fed_rids = {r.rid for r in fed}
        for sn, value in bed.delivered[1].items():
            if not is_nil(value):
                for request in value.requests:
                    assert request.rid in fed_rids

    def test_sb3_termination_with_quiet_sender(self):
        """A quiet sender is eventually suspected and ⊥ fills every position."""
        bed = make_bed(leader_timeout=2.0)
        bed.crash(0)
        bed.start([1, 2, 3])
        bed.run(until=60.0)
        bed.assert_termination([1, 2, 3])
        for node in (1, 2, 3):
            assert all(is_nil(v) for v in bed.delivered[node].values())

    def test_sb4_no_nil_when_sender_correct_and_trusted(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=20.0)
        for node in bed.correct_nodes():
            assert not any(is_nil(v) for v in bed.delivered[node].values())

    def test_mixed_outcome_when_sender_dies_mid_segment(self):
        bed = make_bed(seq_nrs=(0, 1, 2, 3, 4, 5), leader_timeout=2.0)
        bed.feed_requests(0, 24)
        bed.start_all()
        bed.run(until=0.6)
        bed.crash(0)
        bed.run(until=60.0)
        bed.assert_termination([1, 2, 3])
        bed.assert_agreement()

    def test_invalid_payloads_never_enter_consensus(self):
        bed = SBTestBed(
            4,
            lambda ctx: ConsensusSB(ctx, leader_timeout=2.0),
            segment=SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1), buckets=(0,)),
            validate=lambda node, batch: len(batch) == 0,
        )
        bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=60.0)
        bed.assert_termination()
        for node in bed.correct_nodes():
            for value in bed.delivered[node].values():
                assert is_nil(value) or len(value) == 0
