"""Safety-oriented tests: values prepared before a view change survive it.

These tests target the trickiest part of wrapping PBFT/HotStuff in Sequenced
Broadcast: after the segment leader is suspected, a later view/round may only
re-propose values the original leader got prepared/certified — never invent
new ones — and positions without such values terminate as ⊥.
"""

import pytest

from repro.core.types import NIL, SegmentDescriptor, is_nil
from repro.pbft.pbft import PbftSB
from repro.hotstuff.hotstuff import HotStuffSB
from tests.conftest import SBTestBed


class TestPbftViewChangeSafety:
    def test_prepared_value_survives_view_change(self):
        """Partition the leader right after proposals go out: followers that
        prepared a value must re-commit that same value in the new view."""
        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1, 2, 3), buckets=(0,))
        bed = SBTestBed(4, lambda ctx: PbftSB(ctx), segment=segment)
        bed.feed_requests(0, 16)
        bed.start_all()
        # Let proposals and (some) prepares flow, then cut the leader off.
        bed.run(until=0.3)
        snapshot = {sn: v for sn, v in bed.delivered[1].items()}
        bed.crash(0)
        bed.run(until=40.0)
        bed.assert_termination()
        bed.assert_agreement()
        # Whatever had committed at node 1 before the crash still has the
        # same value afterwards at every correct node (agreement implies it,
        # but check explicitly against the snapshot).
        for sn, value in snapshot.items():
            for node in (1, 2, 3):
                after = bed.delivered[node][sn]
                assert is_nil(value) == is_nil(after)
                if not is_nil(value):
                    assert after.digest() == value.digest()

    def test_new_view_does_not_invent_batches(self):
        """After the leader crashes *before* proposing, only ⊥ can commit."""
        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1), buckets=(0,))
        bed = SBTestBed(4, lambda ctx: PbftSB(ctx), segment=segment)
        bed.feed_requests(1, 8, client=5)  # follower 1 has requests, leader has none
        bed.crash(0)
        bed.start([1, 2, 3])
        bed.run(until=30.0)
        bed.assert_termination()
        for node in (1, 2, 3):
            assert all(is_nil(v) for v in bed.delivered[node].values())

    def test_repeated_view_changes_converge(self):
        """Two consecutive crashed primaries still lead to termination."""
        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1), buckets=(0,))
        bed = SBTestBed(7, lambda ctx: PbftSB(ctx), segment=segment)
        bed.crash(0)   # segment leader (view-0 primary)
        bed.crash(1)   # view-1 primary
        bed.start([2, 3, 4, 5, 6])
        bed.run(until=60.0)
        bed.assert_termination([2, 3, 4, 5, 6])
        bed.assert_agreement()


class TestHotStuffRoundChangeSafety:
    def test_certified_value_survives_round_change(self):
        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1, 2, 3), buckets=(0,))
        bed = SBTestBed(4, lambda ctx: HotStuffSB(ctx), segment=segment)
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=1.2)
        snapshot = {sn: v for sn, v in bed.delivered[2].items()}
        bed.crash(0)
        bed.run(until=80.0)
        bed.assert_termination()
        bed.assert_agreement()
        for sn, value in snapshot.items():
            for node in (1, 2, 3):
                after = bed.delivered[node][sn]
                assert is_nil(value) == is_nil(after)
                if not is_nil(value):
                    assert after.digest() == value.digest()

    def test_failover_round_only_delivers_nil_for_unproposed(self):
        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0, 1), buckets=(0,))
        bed = SBTestBed(4, lambda ctx: HotStuffSB(ctx), segment=segment)
        bed.crash(0)
        bed.start([1, 2, 3])
        bed.run(until=80.0)
        bed.assert_termination([1, 2, 3])
        for node in (1, 2, 3):
            assert all(is_nil(v) for v in bed.delivered[node].values())
