"""Unit tests for the replicated log (contiguous delivery, Equation 2)."""

import pytest

from repro.core.log import Log
from repro.core.types import Batch, NIL
from tests.conftest import make_batch, make_request


class TestCommit:
    def test_commit_and_lookup(self):
        log = Log()
        batch = make_batch(make_request())
        assert log.commit(0, batch, epoch=0, now=1.0)
        assert log.entry(0) is batch
        assert log.has_entry(0)

    def test_duplicate_identical_commit_is_noop(self):
        log = Log()
        batch = make_batch(make_request())
        log.commit(0, batch, epoch=0, now=1.0)
        assert not log.commit(0, Batch.of(batch.requests), epoch=0, now=2.0)

    def test_conflicting_commit_raises(self):
        log = Log()
        log.commit(0, make_batch(make_request(timestamp=1)), epoch=0, now=1.0)
        with pytest.raises(ValueError):
            log.commit(0, make_batch(make_request(timestamp=2)), epoch=0, now=2.0)

    def test_nil_commit(self):
        log = Log()
        log.commit(0, NIL, epoch=0, now=0.0)
        assert log.nil_positions() == [0]
        assert not log.commit(0, NIL, epoch=0, now=1.0)

    def test_nil_vs_batch_conflict_raises(self):
        log = Log()
        log.commit(0, NIL, epoch=0, now=0.0)
        with pytest.raises(ValueError):
            log.commit(0, make_batch(make_request()), epoch=0, now=1.0)


class TestDelivery:
    def test_contiguous_delivery_waits_for_gap(self):
        log = Log()
        log.commit(1, make_batch(make_request(timestamp=1)), epoch=0, now=0.0)
        assert log.advance_delivery(now=0.0) == []
        log.commit(0, make_batch(make_request(timestamp=0)), epoch=0, now=0.0)
        delivered = log.advance_delivery(now=1.0)
        assert [d.batch_sn for d in delivered] == [0, 1]
        assert log.first_undelivered == 2

    def test_equation2_request_sequence_numbers(self):
        """sn_r = k + sum of earlier batch sizes (Equation 2)."""
        log = Log()
        first = make_batch(*(make_request(timestamp=i) for i in range(3)))
        second = make_batch(*(make_request(timestamp=10 + i) for i in range(2)))
        log.commit(0, first, epoch=0, now=0.0)
        log.commit(1, second, epoch=0, now=0.0)
        delivered = log.advance_delivery(now=0.0)
        assert [d.sn for d in delivered] == [0, 1, 2, 3, 4]
        assert log.total_delivered_requests == 5

    def test_nil_entries_deliver_no_requests(self):
        log = Log()
        log.commit(0, NIL, epoch=0, now=0.0)
        log.commit(1, make_batch(make_request()), epoch=0, now=0.0)
        delivered = log.advance_delivery(now=0.0)
        assert len(delivered) == 1
        assert delivered[0].sn == 0
        assert delivered[0].batch_sn == 1

    def test_empty_batches_advance_without_requests(self):
        log = Log()
        log.commit(0, Batch.of(()), epoch=0, now=0.0)
        assert log.advance_delivery(now=0.0) == []
        assert log.first_undelivered == 1

    def test_delivery_is_incremental(self):
        log = Log()
        log.commit(0, make_batch(make_request(timestamp=0)), epoch=0, now=0.0)
        assert len(log.advance_delivery(now=0.0)) == 1
        assert log.advance_delivery(now=0.0) == []
        log.commit(1, make_batch(make_request(timestamp=1)), epoch=0, now=0.0)
        assert len(log.advance_delivery(now=0.0)) == 1


class TestQueries:
    def test_is_complete_and_missing(self):
        log = Log()
        log.commit(0, NIL, epoch=0, now=0.0)
        log.commit(2, NIL, epoch=0, now=0.0)
        assert not log.is_complete(range(3))
        assert log.missing(range(3)) == [1]
        log.commit(1, NIL, epoch=0, now=0.0)
        assert log.is_complete(range(3))

    def test_highest_committed(self):
        log = Log()
        assert log.highest_committed() is None
        log.commit(5, NIL, epoch=0, now=0.0)
        assert log.highest_committed() == 5

    def test_digests_in_requires_entries(self):
        log = Log()
        log.commit(0, NIL, epoch=0, now=0.0)
        assert len(log.digests_in([0])) == 1
        with pytest.raises(KeyError):
            log.digests_in([0, 1])

    def test_entries_in_returns_pairs(self):
        log = Log()
        batch = make_batch(make_request())
        log.commit(0, batch, epoch=0, now=0.0)
        assert log.entries_in([0, 1]) == [(0, batch)]
