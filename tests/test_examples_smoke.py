"""Smoke tests keeping the example scripts runnable.

Each example is imported and its ``main()`` executed; the examples use small
deployments so this stays fast.  The fault-tolerance demo is the slowest and
is exercised with a reduced configuration through its building blocks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart")
        module.main()
        output = capsys.readouterr().out
        assert "throughput" in output
        assert "epochs completed" in output

    def test_replicated_kv_store_converges(self, capsys):
        module = load_example("replicated_kv_store")
        module.main()
        output = capsys.readouterr().out
        assert "All replicas converged" in output

    def test_blockchain_ordering_builds_identical_chains(self, capsys):
        module = load_example("blockchain_ordering")
        module.main()
        output = capsys.readouterr().out
        assert "identical chains" in output
        assert "pbft" in output and "hotstuff" in output

    def test_fault_tolerance_demo_building_blocks(self):
        module = load_example("fault_tolerance_demo")
        result = module.build_deployment(crash=True).run()
        assert module.check_safety(result)
        assert result.report.completed == result.report.submitted > 0
