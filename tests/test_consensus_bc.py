"""Unit tests for the single-shot Byzantine consensus used by Algorithm 5."""

from typing import Dict, List, Optional

from repro.consensus.bc import BOTTOM, ByzantineConsensus
from repro.core.config import NetworkConfig
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator


class BcHarness:
    def __init__(self, num_nodes=4, max_faulty=1, view_timeout=2.0):
        self.sim = Simulator(seed=5)
        config = NetworkConfig(inter_dc_latency=0.02, intra_dc_latency=0.001, jitter=0.0)
        self.network = Network(self.sim, config, LatencyModel(config, num_nodes))
        self.num_nodes = num_nodes
        self.decisions: Dict[int, Optional[object]] = {n: None for n in range(num_nodes)}
        self.instances = {}
        for node in range(num_nodes):
            self.instances[node] = ByzantineConsensus(
                instance="slot",
                node_id=node,
                num_nodes=num_nodes,
                max_faulty=max_faulty,
                sim=self.sim,
                broadcast_fn=lambda msg, node=node: self._broadcast(node, msg),
                decide_fn=lambda value, node=node: self.decisions.__setitem__(node, value),
                view_timeout=view_timeout,
            )
            self.network.register(node, lambda src, msg, node=node: self.instances[node].handle_message(src, msg))

    def _broadcast(self, src, message):
        for dst in range(self.num_nodes):
            if dst == src:
                self.sim.call_soon(lambda dst=dst, msg=message: self.instances[dst].handle_message(src, msg))
            else:
                self.network.send(src, dst, message)


class TestByzantineConsensus:
    def test_unanimous_proposal_decides_that_value(self):
        harness = BcHarness()
        for node in range(4):
            harness.instances[node].propose("value-A")
        harness.sim.run(until=10.0)
        assert all(harness.decisions[n] == "value-A" for n in range(4))

    def test_agreement_with_differing_proposals(self):
        harness = BcHarness()
        for node in range(4):
            harness.instances[node].propose(f"value-{node}")
        harness.sim.run(until=20.0)
        decided = {harness.decisions[n] for n in range(4)}
        assert None not in decided
        assert len(decided) == 1

    def test_decision_is_a_proposed_value(self):
        harness = BcHarness()
        proposals = {n: f"value-{n}" for n in range(4)}
        for node, value in proposals.items():
            harness.instances[node].propose(value)
        harness.sim.run(until=20.0)
        assert harness.decisions[0] in set(proposals.values()) | {BOTTOM}

    def test_crashed_coordinator_does_not_block(self):
        harness = BcHarness(view_timeout=1.0)
        harness.network.crash(0)  # node 0 is the view-0 leader
        for node in range(1, 4):
            harness.instances[node].propose("v")
        harness.sim.run(until=30.0)
        for node in range(1, 4):
            assert harness.decisions[node] == "v"

    def test_no_decision_without_quorum(self):
        harness = BcHarness()
        harness.network.crash(2)
        harness.network.crash(3)
        for node in (0, 1):
            harness.instances[node].propose("v")
        harness.sim.run(until=10.0)
        assert harness.decisions[0] is None and harness.decisions[1] is None

    def test_late_proposer_still_decides(self):
        harness = BcHarness()
        for node in range(3):
            harness.instances[node].propose("v")
        harness.sim.run(until=1.0)
        harness.instances[3].propose("other")
        harness.sim.run(until=20.0)
        assert harness.decisions[3] == "v"

    def test_decide_fires_once(self):
        harness = BcHarness()
        count = []
        harness.instances[0]._decide = lambda value: count.append(value)
        for node in range(4):
            harness.instances[node].propose("v")
        harness.sim.run(until=20.0)
        assert len(count) == 1

    def test_bottom_can_be_decided_when_proposed(self):
        harness = BcHarness()
        for node in range(4):
            harness.instances[node].propose(BOTTOM)
        harness.sim.run(until=10.0)
        assert all(harness.decisions[n] == BOTTOM for n in range(4))
