"""Unit tests for core data types."""

import pytest

from repro.core.types import (
    Batch,
    CheckpointCertificate,
    DeliveredRequest,
    NIL,
    Nil,
    Request,
    RequestId,
    SegmentDescriptor,
    is_nil,
)
from tests.conftest import make_request


class TestRequest:
    def test_identity_fields(self):
        request = make_request(client=7, timestamp=3, payload=b"abc")
        assert request.client == 7
        assert request.timestamp == 3
        assert request.rid == RequestId(client=7, timestamp=3)

    def test_equal_requests_have_equal_digests(self):
        a = make_request(client=1, timestamp=2, payload=b"x")
        b = make_request(client=1, timestamp=2, payload=b"x")
        assert a.digest() == b.digest()

    def test_digest_differs_with_payload(self):
        a = make_request(payload=b"x")
        b = make_request(payload=b"y")
        assert a.digest() != b.digest()

    def test_digest_differs_with_identity(self):
        a = make_request(client=1, timestamp=1)
        b = make_request(client=1, timestamp=2)
        assert a.digest() != b.digest()

    def test_digest_is_cached_and_stable(self):
        request = make_request(payload=b"payload")
        assert request.digest() is request.digest()

    def test_size_includes_payload_and_signature(self):
        request = Request(rid=RequestId(0, 0), payload=b"x" * 100, signature=b"s" * 64)
        assert request.size_bytes() == 100 + 16 + 64

    def test_request_id_ordering(self):
        assert RequestId(0, 1) < RequestId(0, 2) < RequestId(1, 0)


class TestBatch:
    def test_len_and_iteration(self):
        requests = [make_request(timestamp=i) for i in range(3)]
        batch = Batch.of(requests)
        assert len(batch) == 3
        assert list(batch) == requests

    def test_empty_batch_is_truthy_but_distinct_from_nil(self):
        batch = Batch.of(())
        assert batch
        assert not is_nil(batch)
        assert not NIL

    def test_batch_digest_depends_on_order(self):
        a, b = make_request(timestamp=1), make_request(timestamp=2)
        assert Batch.of([a, b]).digest() != Batch.of([b, a]).digest()

    def test_batch_digest_deterministic(self):
        requests = [make_request(timestamp=i) for i in range(5)]
        assert Batch.of(requests).digest() == Batch.of(list(requests)).digest()

    def test_batch_size_bytes(self):
        requests = [make_request(timestamp=i, payload=b"p" * 10) for i in range(4)]
        batch = Batch.of(requests)
        assert batch.size_bytes() == 32 + sum(r.size_bytes() for r in requests)


class TestNil:
    def test_nil_is_singleton(self):
        assert Nil() is NIL

    def test_is_nil(self):
        assert is_nil(NIL)
        assert not is_nil(Batch.of(()))
        assert not is_nil(None)

    def test_nil_digest_stable(self):
        assert NIL.digest() == Nil().digest()


class TestSegmentDescriptor:
    def test_instance_id_and_membership(self):
        segment = SegmentDescriptor(epoch=2, leader=1, seq_nrs=(1, 4, 7), buckets=(0, 3))
        assert segment.instance_id == (2, 1)
        assert 4 in segment
        assert 5 not in segment
        assert len(segment) == 3


class TestCheckpointCertificate:
    def test_signers(self):
        certificate = CheckpointCertificate(
            epoch=1, last_sn=15, log_root=b"r", signatures=((0, b"a"), (2, b"b"))
        )
        assert list(certificate.signers()) == [0, 2]


class TestCachedHashing:
    def test_request_id_hash_matches_field_tuple(self):
        rid = RequestId(client=3, timestamp=7)
        assert hash(rid) == hash((3, 7))
        assert rid == RequestId(client=3, timestamp=7)

    def test_request_hash_stable_and_equal_for_copies(self):
        a = Request(rid=RequestId(1, 2), payload=b"x", signature=b"s")
        b = Request(rid=RequestId(1, 2), payload=b"x", signature=b"s")
        assert hash(a) == hash(b)
        assert a == b
        assert len({a, b}) == 1

    def test_segment_bucket_set_cached(self):
        segment = SegmentDescriptor(epoch=0, leader=0, seq_nrs=(0,), buckets=(1, 5))
        assert segment.bucket_set() == frozenset({1, 5})
        assert segment.bucket_set() is segment.bucket_set()


class TestDeliveredRequestContract:
    def test_hashable_and_frozen(self):
        import pytest as _pytest
        from dataclasses import FrozenInstanceError

        item = DeliveredRequest(
            request=Request(rid=RequestId(0, 0)), sn=0, batch_sn=0, epoch=0, delivered_at=1.0
        )
        assert len({item, item}) == 1  # usable in sets/dicts
        with _pytest.raises(FrozenInstanceError):
            item.sn = 99
