"""Unit tests for the simulated WAN network (bandwidth, latency, faults)."""

import pytest

from repro.core.config import NetworkConfig
from repro.sim.latency import LatencyModel
from repro.sim.network import Network, wire_size
from repro.sim.simulator import Simulator


class _Payload:
    """Payload with an explicit wire size, for bandwidth tests."""

    def __init__(self, size: int):
        self._size = size

    def wire_size(self) -> int:
        return self._size


def build_network(num_nodes=4, **overrides):
    config = NetworkConfig(
        bandwidth_bps=overrides.pop("bandwidth_bps", 1e9),
        inter_dc_latency=overrides.pop("inter_dc_latency", 0.05),
        intra_dc_latency=overrides.pop("intra_dc_latency", 0.001),
        jitter=overrides.pop("jitter", 0.0),
        **overrides,
    )
    sim = Simulator(seed=3)
    latency = LatencyModel(config, num_nodes)
    return sim, Network(sim, config, latency)


class Inbox:
    def __init__(self):
        self.messages = []

    def __call__(self, src, message):
        self.messages.append((src, message))


class TestDelivery:
    def test_point_to_point_delivery(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        net.send(0, 1, "hello")
        sim.run()
        assert inbox.messages == [(0, "hello")]

    def test_delivery_respects_propagation_latency(self):
        sim, net = build_network(inter_dc_latency=0.1)
        arrival = []
        net.register(0, Inbox())
        net.register(1, lambda src, msg: arrival.append(sim.now))
        net.send(0, 1, _Payload(10))
        sim.run()
        # Cross-datacenter latency is the configured mean scaled by ring
        # distance (between 25% and 175% of the mean), never sub-millisecond.
        assert arrival and 0.1 * 0.25 <= arrival[0] <= 0.1 * 1.75 + 0.01

    def test_unregistered_destination_drops(self):
        sim, net = build_network()
        net.register(0, Inbox())
        net.send(0, 9, "lost")
        sim.run()
        assert net.stats.messages_dropped == 1

    def test_multicast_reaches_all(self):
        sim, net = build_network()
        inboxes = {n: Inbox() for n in range(4)}
        for n, inbox in inboxes.items():
            net.register(n, inbox)
        net.multicast(0, [1, 2, 3], "hi")
        sim.run()
        for n in (1, 2, 3):
            assert inboxes[n].messages == [(0, "hi")]

    def test_stats_count_bytes_per_sender(self):
        sim, net = build_network()
        net.register(0, Inbox())
        net.register(1, Inbox())
        net.send(0, 1, _Payload(1000))
        net.send(0, 1, _Payload(500))
        sim.run()
        assert net.stats.per_node_bytes_sent[0] == 1500
        assert net.stats.per_node_messages_sent[0] == 2


class TestBandwidth:
    def test_nic_serialises_consecutive_sends(self):
        """Two large messages from the same sender arrive one transmission apart."""
        sim, net = build_network(bandwidth_bps=8e6, inter_dc_latency=0.0, intra_dc_latency=0.0)
        arrivals = []
        net.register(0, Inbox())
        net.register(1, lambda src, msg: arrivals.append(sim.now))
        # 1 MB at 8 Mbit/s = 1 second of transmission each.
        net.send(0, 1, _Payload(1_000_000))
        net.send(0, 1, _Payload(1_000_000))
        sim.run()
        assert len(arrivals) == 2
        assert arrivals[1] - arrivals[0] == pytest.approx(1.0, rel=0.05)

    def test_single_sender_bandwidth_bounds_throughput(self):
        """A leader pushing the same batch to n-1 followers pays n-1 transmissions."""
        sim, net = build_network(num_nodes=5, bandwidth_bps=8e6, inter_dc_latency=0.0, intra_dc_latency=0.0)
        last_arrival = []
        for n in range(5):
            net.register(n, lambda src, msg: last_arrival.append(sim.now))
        net.multicast(0, [1, 2, 3, 4], _Payload(1_000_000))
        sim.run()
        # 4 copies of 1 s each must leave the NIC back to back.
        assert max(last_arrival) == pytest.approx(4.0, rel=0.05)

    def test_backlog_reporting(self):
        sim, net = build_network(bandwidth_bps=8e6)
        net.register(0, Inbox())
        net.register(1, Inbox())
        net.send(0, 1, _Payload(1_000_000))
        assert net.nic_backlog(0) == pytest.approx(1.0, rel=0.05)


class TestLinkBandwidth:
    """Per-link queueing (``NetworkConfig.link_bandwidth_bps``), off by default."""

    def _build(self, **overrides):
        # NIC practically infinite so only the link serialises; zero
        # latency/jitter/processing so the queueing delay is exact.
        return build_network(
            bandwidth_bps=overrides.pop("bandwidth_bps", 1e15),
            inter_dc_latency=0.0,
            intra_dc_latency=0.0,
            processing_delay=0.0,
            **overrides,
        )

    def test_saturated_link_queues_back_to_back_messages(self):
        """100-byte messages on an 8 kbit/s link serialise 0.1 s apart."""
        sim, net = self._build(link_bandwidth_bps=8000.0)
        arrivals = []
        net.register(0, Inbox())
        net.register(1, lambda src, msg: arrivals.append(sim.now))
        for _ in range(3):
            net.send(0, 1, _Payload(100))
        sim.run()
        # Each message occupies the link for 100 * 8 / 8000 = 0.1 s; the
        # k-th arrives at exactly k * 0.1 (NIC time is 8e-13 s, negligible).
        assert arrivals == pytest.approx([0.1, 0.2, 0.3], abs=1e-6)

    def test_links_queue_independently(self):
        """Saturating 0→1 must not delay 0→2 (per-link, not per-NIC, queueing)."""
        sim, net = self._build(link_bandwidth_bps=8000.0)
        arrivals = {1: [], 2: []}
        net.register(0, Inbox())
        net.register(1, lambda src, msg: arrivals[1].append(sim.now))
        net.register(2, lambda src, msg: arrivals[2].append(sim.now))
        for _ in range(3):
            net.send(0, 1, _Payload(100))
        net.send(0, 2, _Payload(100))
        sim.run()
        assert arrivals[1] == pytest.approx([0.1, 0.2, 0.3], abs=1e-6)
        # The 0→2 link saw one message only: one transmission, no queue.
        assert arrivals[2] == pytest.approx([0.1], abs=1e-6)

    def test_disabled_by_default(self):
        """link_bandwidth_bps=0 (default) adds no delay beyond the NIC model."""
        sim, net = self._build()
        arrivals = []
        net.register(0, Inbox())
        net.register(1, lambda src, msg: arrivals.append(sim.now))
        for _ in range(3):
            net.send(0, 1, _Payload(100))
        sim.run()
        assert all(t == pytest.approx(0.0, abs=1e-6) for t in arrivals)

    def test_link_queue_waits_for_nic_departure(self):
        """Link serialisation starts after the sender NIC releases the message."""
        sim, net = self._build(bandwidth_bps=8e6, link_bandwidth_bps=8e6)
        arrivals = []
        net.register(0, Inbox())
        net.register(1, lambda src, msg: arrivals.append(sim.now))
        # 1 MB at 8 Mbit/s: 1 s on the NIC, then 1 s on the link.
        net.send(0, 1, _Payload(1_000_000))
        sim.run()
        assert arrivals == pytest.approx([2.0], rel=0.01)


class TestFaults:
    def test_crashed_sender_messages_dropped(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        net.crash(0)
        net.send(0, 1, "x")
        sim.run()
        assert inbox.messages == []

    def test_crashed_receiver_messages_dropped(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        net.crash(1)
        net.send(0, 1, "x")
        sim.run()
        assert inbox.messages == []

    def test_crash_after_send_drops_in_flight(self):
        sim, net = build_network(inter_dc_latency=0.5)
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        net.send(0, 1, "x")
        net.crash(1)
        sim.run()
        assert inbox.messages == []

    def test_recover_restores_connectivity(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        net.crash(1)
        net.recover(1)
        net.send(0, 1, "x")
        sim.run()
        assert len(inbox.messages) == 1

    def test_partition_blocks_cross_group_traffic(self):
        sim, net = build_network()
        inboxes = {n: Inbox() for n in range(4)}
        for n, inbox in inboxes.items():
            net.register(n, inbox)
        net.partition([[0, 1], [2, 3]])
        net.send(0, 1, "same-side")
        net.send(0, 2, "cross")
        sim.run()
        assert len(inboxes[1].messages) == 1
        assert len(inboxes[2].messages) == 0

    def test_heal_partition(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(2, inbox)
        net.partition([[0], [2]])
        net.heal_partition()
        net.send(0, 2, "x")
        sim.run()
        assert len(inbox.messages) == 1

    def test_link_filter_can_drop(self):
        sim, net = build_network()
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        net.add_link_filter(lambda src, dst, msg: msg != "drop-me")
        net.send(0, 1, "drop-me")
        net.send(0, 1, "keep-me")
        sim.run()
        assert [m for _, m in inbox.messages] == ["keep-me"]

    def test_random_drop_rate(self):
        sim, net = build_network(drop_rate=0.5)
        inbox = Inbox()
        net.register(0, Inbox())
        net.register(1, inbox)
        for _ in range(200):
            net.send(0, 1, "x")
        sim.run()
        assert 30 < len(inbox.messages) < 170


class TestWireSize:
    def test_wire_size_uses_explicit_method(self):
        assert wire_size(_Payload(123)) == 123

    def test_wire_size_default_for_plain_objects(self):
        assert wire_size("some string") == 96

    def test_wire_size_uses_size_bytes(self):
        from tests.conftest import make_request

        request = make_request(payload=b"x" * 100)
        assert wire_size(request) == request.size_bytes()
