"""Tests for the Raft Sequenced-Broadcast implementation (CFT)."""

import pytest

from repro.core.config import ISSConfig
from repro.core.types import SegmentDescriptor, is_nil
from repro.raft.raft import FOLLOWER, LEADER, RaftSB
from tests.conftest import SBTestBed


def raft_config(num_nodes: int) -> ISSConfig:
    return ISSConfig(
        num_nodes=num_nodes,
        protocol="raft",
        byzantine=False,
        epoch_length=8,
        max_batch_size=4,
        batch_rate=None,
        min_batch_timeout=0.0,
        max_batch_timeout=0.2,
        view_change_timeout=3.0,
        epoch_change_timeout=3.0,
        election_timeout=(2.0, 4.0),
        client_signatures=False,
    )


def make_bed(num_nodes=3, leader=0, seq_nrs=(0, 1, 2, 3), **kwargs) -> SBTestBed:
    segment = SegmentDescriptor(epoch=0, leader=leader, seq_nrs=tuple(seq_nrs), buckets=(0,))
    return SBTestBed(
        num_nodes,
        lambda ctx: RaftSB(ctx),
        segment=segment,
        config=raft_config(num_nodes),
        **kwargs,
    )


class TestFaultFree:
    def test_all_nodes_deliver_all_sequence_numbers(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        bed.run(until=10.0)
        bed.assert_termination()
        bed.assert_agreement()

    def test_values_match_leader_batches(self):
        bed = make_bed()
        fed = bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=10.0)
        delivered = [
            request.rid
            for sn in bed.segment.seq_nrs
            for request in bed.delivered[1][sn].requests
        ]
        assert delivered == [r.rid for r in fed[:8]]

    def test_initial_leader_is_segment_leader_without_election(self):
        bed = make_bed(leader=1)
        bed.feed_requests(1, 8)
        bed.start_all()
        bed.run(until=10.0)
        assert bed.instances[1].role == LEADER
        assert bed.instances[1].term == 0
        assert bed.instances[1].elections_started == 0
        bed.assert_termination()

    def test_five_nodes(self):
        bed = make_bed(num_nodes=5, seq_nrs=(0, 1, 2, 3, 4, 5))
        bed.feed_requests(0, 24)
        bed.start_all()
        bed.run(until=15.0)
        bed.assert_termination()
        bed.assert_agreement()

    def test_commit_needs_majority(self):
        """With a majority of followers crashed, nothing commits."""
        bed = make_bed(num_nodes=5)
        bed.feed_requests(0, 8)
        bed.crash(3)
        bed.crash(4)
        bed.crash(2)
        bed.start([0, 1])
        bed.run(until=10.0)
        assert bed.delivered[0] == {}


class TestLeaderFailure:
    def test_election_fills_remaining_with_nil(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.crash(0)
        bed.start([1, 2])
        bed.run(until=60.0)
        bed.assert_termination([1, 2])
        bed.assert_agreement()
        for node in (1, 2):
            assert all(is_nil(v) for v in bed.delivered[node].values())
        assert any(bed.instances[n].role == LEADER for n in (1, 2))

    def test_mid_segment_crash_keeps_committed_prefix(self):
        bed = make_bed(seq_nrs=(0, 1, 2, 3, 4, 5))
        bed.feed_requests(0, 24)
        bed.start_all()
        bed.run(until=1.0)
        committed_before = dict(bed.delivered[1])
        bed.crash(0)
        bed.run(until=60.0)
        bed.assert_termination([1, 2])
        bed.assert_agreement()
        for sn, value in committed_before.items():
            entry = bed.delivered[1][sn]
            if not is_nil(value):
                assert not is_nil(entry) and entry.digest() == value.digest()

    def test_new_leader_has_higher_term(self):
        bed = make_bed()
        bed.crash(0)
        bed.start([1, 2])
        bed.run(until=60.0)
        new_leaders = [bed.instances[n] for n in (1, 2) if bed.instances[n].role == LEADER]
        assert new_leaders and all(inst.term >= 1 for inst in new_leaders)

    def test_election_timeout_range_doubles_on_failed_election(self):
        bed = make_bed(num_nodes=5)
        # Crash enough nodes that elections cannot succeed.
        bed.crash(0)
        bed.crash(3)
        bed.crash(4)
        bed.start([1, 2])
        bed.run(until=30.0)
        low, high = bed.instances[1]._election_range
        assert low > 2.0 and high > 4.0


class TestLogReplication:
    def test_followers_catch_up_after_short_disconnect(self):
        bed = make_bed()
        bed.feed_requests(0, 16)
        bed.start_all()
        # Partition node 2 away briefly; Raft's retransmission catches it up.
        bed.network.partition([[0, 1], [2]])
        bed.run(until=1.0)
        bed.network.heal_partition()
        bed.run(until=20.0)
        bed.assert_termination()
        bed.assert_agreement()

    def test_leader_retransmits_until_acknowledged(self):
        bed = make_bed()
        bed.feed_requests(0, 8)
        bed.start_all()
        bed.run(until=10.0)
        # Heartbeats plus per-follower retransmissions: message count well
        # above the minimum one-append-per-entry.
        assert bed.network.stats.messages_sent > 3 * len(bed.segment.seq_nrs)
