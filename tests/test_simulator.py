"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(1.5, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_schedule_at_past_time_runs_now(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        final = sim.run()
        assert final == 1.0

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            order.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert seen == [1, 5]

    def test_run_until_idle_executes_everything(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), lambda: count.append(1))
        sim.run_until_idle()
        assert len(count) == 10

    def test_max_events_limits_execution(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_pending_events(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events() == 2
        timer.cancel()
        assert sim.pending_events() == 1


class TestTimers:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule(1.0, lambda: seen.append(1))
        timer.cancel()
        sim.run()
        assert seen == []

    def test_timer_reset_moves_fire_time(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule(1.0, lambda: seen.append(sim.now))
        timer.reset(3.0)
        sim.run()
        assert seen == [3.0]

    def test_timer_active_property(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        timer.cancel()
        assert not timer.active

    def test_fired_timer_is_not_active(self):
        """A timer whose event already ran must report active == False, even
        though its fire time equals the current virtual time."""
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == timer.fire_time
        assert not timer.active

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        timer.cancel()
        assert fired == [1]
        assert sim.pending_events() == 0

    def test_reset_after_fire_reschedules(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        timer.reset(2.0)
        assert timer.active
        sim.run()
        assert fired == [1.0, 3.0]

    def test_timer_reset_after_cancel(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule(1.0, lambda: seen.append(sim.now))
        timer.cancel()
        timer.reset(0.5)
        sim.run()
        assert seen == [0.5]

    def test_determinism_same_seed(self):
        def run_once(seed: int):
            sim = Simulator(seed=seed)
            values = []
            def emit():
                values.append(sim.rng.random())
                if len(values) < 5:
                    sim.schedule(sim.rng.random(), emit)
            sim.schedule(0.1, emit)
            sim.run()
            return values

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)


class TestFastCallbackPath:
    """The allocation-free schedule_callback fast path used for deliveries."""

    def test_fast_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_callback(2.0, lambda: order.append("late"))
        sim.schedule_callback(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_fast_and_timer_events_interleave_by_insertion(self):
        """Both scheduling paths share one sequence counter, so same-time
        events run in global insertion order regardless of the path."""
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("timer-1"))
        sim.schedule_callback(1.0, lambda: order.append("fast-2"))
        sim.schedule(1.0, lambda: order.append("timer-3"))
        sim.schedule_callback(1.0, lambda: order.append("fast-4"))
        sim.run()
        assert order == ["timer-1", "fast-2", "timer-3", "fast-4"]

    def test_fast_callback_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_callback(-0.5, lambda: None)

    def test_fast_callback_counts_as_pending_and_executed(self):
        sim = Simulator()
        sim.schedule_callback(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events() == 2
        sim.run()
        assert sim.pending_events() == 0
        assert sim.events_executed == 2

    def test_schedule_callback_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_callback_at(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]


class TestHeapCompaction:
    def test_pending_events_is_counter_based(self):
        sim = Simulator()
        timers = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending_events() == 10
        for timer in timers[:4]:
            timer.cancel()
        assert sim.pending_events() == 6
        # Cancelling twice must not double-count.
        timers[0].cancel()
        assert sim.pending_events() == 6

    def test_mass_cancellation_compacts_heap(self):
        sim = Simulator()
        timers = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for timer in timers[:400]:
            timer.cancel()
        # More than half of the queued entries were cancelled, so the heap
        # must have been compacted down to the live events.
        assert len(sim._queue) <= 150
        assert sim.pending_events() == 100
        executed = []
        sim.schedule(1000.0, lambda: executed.append(sim.now))
        sim.run()
        assert sim.pending_events() == 0
        assert executed == [1000.0]

    def test_cancellation_during_run_is_safe(self):
        """Compaction triggered by cancellations inside a callback must not
        confuse the running event loop."""
        sim = Simulator()
        fired = []
        timers = [sim.schedule(10.0 + i, lambda i=i: fired.append(i)) for i in range(200)]

        def cancel_most():
            for timer in timers[:190]:
                timer.cancel()

        sim.schedule(1.0, cancel_most)
        sim.run()
        assert fired == list(range(190, 200))
        assert sim.pending_events() == 0


class TestExceptionSafety:
    def test_raising_callback_keeps_pending_counter_consistent(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("callback failure")

        sim.schedule_callback(1.0, boom)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run()
        # The raising event was consumed; only the later timer is pending.
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0
