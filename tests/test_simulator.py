"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.simulator import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(1.5, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_schedule_at_past_time_runs_now(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        final = sim.run()
        assert final == 1.0

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            order.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert seen == [1, 5]

    def test_run_until_idle_executes_everything(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), lambda: count.append(1))
        sim.run_until_idle()
        assert len(count) == 10

    def test_max_events_limits_execution(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i), lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_pending_events(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events() == 2
        timer.cancel()
        assert sim.pending_events() == 1


class TestTimers:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule(1.0, lambda: seen.append(1))
        timer.cancel()
        sim.run()
        assert seen == []

    def test_timer_reset_moves_fire_time(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule(1.0, lambda: seen.append(sim.now))
        timer.reset(3.0)
        sim.run()
        assert seen == [3.0]

    def test_timer_active_property(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        assert timer.active
        timer.cancel()
        assert not timer.active

    def test_determinism_same_seed(self):
        def run_once(seed: int):
            sim = Simulator(seed=seed)
            values = []
            def emit():
                values.append(sim.rng.random())
                if len(values) < 5:
                    sim.schedule(sim.rng.random(), emit)
            sim.schedule(0.1, emit)
            sim.run()
            return values

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)
