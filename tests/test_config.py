"""Unit tests for configuration objects and Table 1 defaults."""

import pytest

from repro.core.config import (
    ConfigError,
    ISSConfig,
    NetworkConfig,
    WorkloadConfig,
    paper_config,
    PROTOCOL_HOTSTUFF,
    PROTOCOL_PBFT,
    PROTOCOL_RAFT,
)


class TestISSConfig:
    def test_bft_fault_threshold(self):
        assert ISSConfig(num_nodes=4).max_faulty == 1
        assert ISSConfig(num_nodes=7).max_faulty == 2
        assert ISSConfig(num_nodes=128).max_faulty == 42

    def test_cft_fault_threshold(self):
        config = ISSConfig(num_nodes=5, protocol=PROTOCOL_RAFT, byzantine=False)
        assert config.max_faulty == 2

    def test_quorums(self):
        config = ISSConfig(num_nodes=7)
        assert config.strong_quorum == 5
        assert config.weak_quorum == 3

    def test_num_buckets_scales_with_nodes(self):
        config = ISSConfig(num_nodes=4, buckets_per_leader=16)
        assert config.num_buckets == 64

    def test_max_leaders_capped_by_segment_size(self):
        config = ISSConfig(num_nodes=32, epoch_length=32, min_segment_size=16)
        assert config.max_leaders() == 2

    def test_max_leaders_capped_by_node_count(self):
        config = ISSConfig(num_nodes=4, epoch_length=256, min_segment_size=2)
        assert config.max_leaders() == 4

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ConfigError):
            ISSConfig(num_nodes=4, protocol="paxos")

    def test_raft_must_be_cft(self):
        with pytest.raises(ConfigError):
            ISSConfig(num_nodes=4, protocol=PROTOCOL_RAFT, byzantine=True)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigError):
            ISSConfig(num_nodes=4, leader_policy="random")

    def test_invalid_epoch_length_rejected(self):
        with pytest.raises(ConfigError):
            ISSConfig(num_nodes=4, epoch_length=0)

    def test_negative_batch_rate_rejected(self):
        with pytest.raises(ConfigError):
            ISSConfig(num_nodes=4, batch_rate=-1.0)

    def test_with_updates_revalidates(self):
        config = ISSConfig(num_nodes=4)
        updated = config.with_updates(num_nodes=7)
        assert updated.num_nodes == 7
        with pytest.raises(ConfigError):
            config.with_updates(epoch_length=-1)


class TestPaperConfig:
    def test_pbft_matches_table1(self):
        config = paper_config(PROTOCOL_PBFT, 32)
        assert config.max_batch_size == 2048
        assert config.batch_rate == 32.0
        assert config.epoch_length == 256
        assert config.min_segment_size == 2
        assert config.buckets_per_leader == 16
        assert config.epoch_change_timeout == 10.0
        assert config.client_signatures is True

    def test_hotstuff_matches_table1(self):
        config = paper_config(PROTOCOL_HOTSTUFF, 32)
        assert config.max_batch_size == 4096
        assert config.batch_rate is None
        assert config.min_batch_timeout == 1.0
        assert config.min_segment_size == 16

    def test_raft_matches_table1(self):
        config = paper_config(PROTOCOL_RAFT, 32)
        assert config.max_batch_size == 4096
        assert config.batch_rate == 32.0
        assert config.client_signatures is False
        assert config.byzantine is False

    def test_overrides_win(self):
        config = paper_config(PROTOCOL_PBFT, 8, epoch_length=64)
        assert config.epoch_length == 64

    def test_unknown_protocol(self):
        with pytest.raises(ConfigError):
            paper_config("zab", 4)


class TestOtherConfigs:
    def test_network_config_validation(self):
        NetworkConfig().validate()
        with pytest.raises(ConfigError):
            NetworkConfig(bandwidth_bps=0).validate()
        with pytest.raises(ConfigError):
            NetworkConfig(drop_rate=1.5).validate()

    def test_workload_config_validation(self):
        WorkloadConfig().validate()
        with pytest.raises(ConfigError):
            WorkloadConfig(total_rate=0).validate()
        with pytest.raises(ConfigError):
            WorkloadConfig(duration=0).validate()
        with pytest.raises(ConfigError):
            WorkloadConfig(num_clients=0).validate()
