"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.buckets import (
    BucketPool,
    BucketQueue,
    assignment_for_epoch,
    bucket_of,
    buckets_for_leader,
)
from repro.core.log import Log
from repro.core.segment import (
    LAYOUT_CONTIGUOUS,
    LAYOUT_ROUND_ROBIN,
    build_segments,
    epoch_of,
    epoch_seq_nrs,
    segment_seq_nrs,
)
from repro.core.types import Batch, NIL, Request, RequestId
from repro.core.validation import ClientWatermarks
from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import KeyStore
from repro.metrics.collector import LatencySummary


# ---------------------------------------------------------------------------
# Bucket assignment invariants (Section 2.4)
# ---------------------------------------------------------------------------

leaderset_strategy = st.integers(min_value=2, max_value=10).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n, unique=True),
    )
)


@settings(max_examples=60, deadline=None)
@given(
    data=leaderset_strategy,
    epoch=st.integers(min_value=0, max_value=50),
    buckets_per_node=st.integers(min_value=1, max_value=8),
)
def test_bucket_assignment_is_a_partition(data, epoch, buckets_per_node):
    """Every bucket is assigned to exactly one leader in every epoch."""
    num_nodes, leaders = data
    num_buckets = buckets_per_node * num_nodes
    assignment = assignment_for_epoch(epoch, leaders, num_nodes, num_buckets)
    combined = sorted(b for buckets in assignment.values() for b in buckets)
    assert combined == list(range(num_buckets))


@settings(max_examples=40, deadline=None)
@given(
    data=leaderset_strategy,
    epoch=st.integers(min_value=0, max_value=20),
)
def test_fast_assignment_equals_reference_formula(data, epoch):
    num_nodes, leaders = data
    num_buckets = 2 * num_nodes
    fast = assignment_for_epoch(epoch, leaders, num_nodes, num_buckets)
    for leader in leaders:
        assert sorted(fast[leader]) == buckets_for_leader(epoch, leader, leaders, num_nodes, num_buckets)


@settings(max_examples=60, deadline=None)
@given(
    client=st.integers(min_value=0, max_value=2**31),
    timestamp=st.integers(min_value=0, max_value=2**31),
    num_buckets=st.integers(min_value=1, max_value=512),
)
def test_bucket_of_in_range_and_deterministic(client, timestamp, num_buckets):
    rid = RequestId(client=client, timestamp=timestamp)
    bucket = bucket_of(rid, num_buckets)
    assert 0 <= bucket < num_buckets
    assert bucket == bucket_of(rid, num_buckets)


# ---------------------------------------------------------------------------
# Segment / epoch invariants (Section 2.3)
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    epoch=st.integers(min_value=0, max_value=100),
    epoch_length=st.integers(min_value=1, max_value=64),
    num_leaders=st.integers(min_value=1, max_value=12),
    layout=st.sampled_from([LAYOUT_ROUND_ROBIN, LAYOUT_CONTIGUOUS]),
)
def test_segments_partition_epoch_for_any_layout(epoch, epoch_length, num_leaders, layout):
    all_sns = []
    for index in range(num_leaders):
        all_sns.extend(segment_seq_nrs(epoch, index, num_leaders, epoch_length, layout=layout))
    assert sorted(all_sns) == list(epoch_seq_nrs(epoch, epoch_length))


@settings(max_examples=60, deadline=None)
@given(
    sn=st.integers(min_value=0, max_value=10**6),
    epoch_length=st.integers(min_value=1, max_value=1024),
)
def test_epoch_of_is_consistent_with_epoch_ranges(sn, epoch_length):
    epoch = epoch_of(sn, epoch_length)
    assert sn in epoch_seq_nrs(epoch, epoch_length)


@settings(max_examples=30, deadline=None)
@given(
    num_nodes=st.integers(min_value=1, max_value=8),
    epoch=st.integers(min_value=0, max_value=10),
    epoch_length=st.integers(min_value=4, max_value=32),
)
def test_build_segments_round_trip(num_nodes, epoch, epoch_length):
    leaders = list(range(num_nodes))
    segments = build_segments(epoch, leaders, num_nodes, epoch_length, num_buckets=num_nodes * 4)
    sns = sorted(sn for s in segments for sn in s.seq_nrs)
    buckets = sorted(b for s in segments for b in s.buckets)
    assert sns == list(epoch_seq_nrs(epoch, epoch_length))
    assert buckets == list(range(num_nodes * 4))


# ---------------------------------------------------------------------------
# Bucket queue FIFO / exactly-once invariants (Section 3.7)
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(timestamps=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=50, unique=True))
def test_bucket_queue_fifo(timestamps):
    queue = BucketQueue(0)
    requests = [Request(rid=RequestId(0, ts)) for ts in timestamps]
    for request in requests:
        queue.add(request)
    drained = queue.take_oldest(len(requests))
    assert [r.rid for r in drained] == [r.rid for r in requests]


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["add", "remove", "resurrect", "deliver"]), st.integers(0, 15)),
        min_size=1,
        max_size=80,
    )
)
def test_bucket_pool_never_duplicates_or_revives_delivered(operations):
    """Whatever the interleaving, a delivered request never reappears and the
    pool never holds two copies of the same request."""
    pool = BucketPool(num_buckets=4)
    delivered = set()
    requests = {ts: Request(rid=RequestId(0, ts)) for ts in range(16)}
    for op, ts in operations:
        request = requests[ts]
        if op == "add":
            pool.add_request(request)
        elif op == "remove":
            pool.remove_request(request.rid)
        elif op == "resurrect":
            pool.resurrect([request])
        elif op == "deliver":
            pool.mark_delivered(request)
            delivered.add(request.rid)
        for rid in delivered:
            assert rid not in pool.queue(pool.bucket_of(rid))
    total_pending = pool.total_pending()
    distinct_pending = len({r.rid for b in range(4) for r in pool.queue(b).pending()})
    assert total_pending == distinct_pending


# ---------------------------------------------------------------------------
# Log invariants (Equation 2)
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(batch_sizes=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20))
def test_log_request_numbering_matches_equation_2(batch_sizes):
    log = Log()
    counter = 0
    expected_total = 0
    for sn, size in enumerate(batch_sizes):
        requests = [Request(rid=RequestId(1, counter + i)) for i in range(size)]
        counter += size
        expected_total += size
        log.commit(sn, Batch.of(requests), epoch=0, now=0.0)
    delivered = log.advance_delivery(now=0.0)
    assert [d.sn for d in delivered] == list(range(expected_total))
    assert log.total_delivered_requests == expected_total


@settings(max_examples=40, deadline=None)
@given(order=st.permutations(list(range(12))))
def test_log_delivery_order_independent_of_commit_order(order):
    """Contiguous delivery yields the same result regardless of commit order."""
    log = Log()
    for sn in order:
        log.commit(sn, Batch.of([Request(rid=RequestId(0, sn))]), epoch=0, now=0.0)
        log.advance_delivery(now=0.0)
    assert log.first_undelivered == 12
    assert log.total_delivered_requests == 12


# ---------------------------------------------------------------------------
# Watermarks
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    delivered=st.lists(st.integers(min_value=0, max_value=63), max_size=64, unique=True),
    window=st.integers(min_value=1, max_value=32),
)
def test_watermark_low_never_exceeds_first_gap(delivered, window):
    marks = ClientWatermarks(window=window)
    for ts in delivered:
        marks.note_delivered(0, ts)
    marks.advance_epoch()
    low = marks.low_watermark(0)
    delivered_set = set(delivered)
    # Everything below the low watermark has been delivered...
    assert all(ts in delivered_set for ts in range(low))
    # ...and the position at the watermark has not.
    assert low not in delivered_set


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(leaves=st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=32))
def test_merkle_proofs_verify_for_random_trees(leaves):
    hashed = [sha256(leaf) for leaf in leaves]
    tree = MerkleTree(hashed)
    for index, leaf in enumerate(hashed):
        assert MerkleTree.verify(tree.root, leaf, tree.proof(index))


@settings(max_examples=40, deadline=None)
@given(identity=st.integers(min_value=0, max_value=1000), message=st.binary(max_size=64))
def test_signatures_only_verify_for_signer_and_message(identity, message):
    ks = KeyStore(deployment_seed=3)
    signature = ks.sign(identity, message)
    assert ks.verify(identity, message, signature)
    assert not ks.verify(identity + 1, message, signature)
    assert not ks.verify(identity, message + b"x", signature)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(samples=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=200))
def test_latency_summary_orderings(samples):
    summary = LatencySummary.from_samples(samples)
    assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
    assert 0.0 <= summary.mean <= summary.maximum
