"""Documentation-presence tests (the tier-1 face of ``repro.doccheck``).

The project promises that every public ``repro.*`` module — and every public
class/function defined in one — carries a docstring, and that the README's
``python`` blocks execute.  ``python -m repro.doccheck`` enforces this from
the command line / CI; these tests enforce the same invariants in the suite
so a bare ``pytest`` run catches documentation rot too.
"""

from pathlib import Path

from repro import doccheck

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestDocstringAudit:
    def test_every_public_module_and_member_is_documented(self):
        problems = doccheck.check_docstrings()
        assert not problems, "undocumented public API:\n" + "\n".join(problems)

    def test_module_walk_covers_the_package(self):
        names = doccheck.iter_public_module_names()
        # Spot-check the subsystems the architecture guide names.
        for expected in (
            "repro",
            "repro.core.iss",
            "repro.sim.batching",
            "repro.sim.network",
            "repro.harness.runner",
            "repro.doccheck",
        ):
            assert expected in names


class TestReadmeBlocks:
    def test_readme_python_blocks_execute(self):
        problems = doccheck.check_readme_blocks(REPO_ROOT / "README.md")
        assert not problems, "\n".join(problems)

    def test_scenario_catalog_python_blocks_execute(self):
        problems = doccheck.check_readme_blocks(REPO_ROOT / "docs" / "SCENARIOS.md")
        assert not problems, "\n".join(problems)

    def test_block_extraction_finds_fenced_python(self):
        markdown = "text\n```python\nx = 1\n```\n```bash\nls\n```\n"
        blocks = doccheck.extract_python_blocks(markdown)
        assert blocks == ["x = 1\n"]
