#!/usr/bin/env python3
"""A blockchain ordering service (Hyperledger-Fabric style) on top of ISS.

The paper motivates ISS as an ordering layer for permissioned blockchains
(e.g. the ordering service of Hyperledger Fabric).  This example uses the
totally ordered, batched output of ISS to build a chain of blocks: each
committed batch becomes a block whose header links to the previous block's
hash, and every node independently derives the identical chain.

It also demonstrates switching the Sequenced Broadcast implementation: the
same ordering service runs once over PBFT and once over HotStuff, comparing
throughput and latency of the two backends.

Run with:  python examples/blockchain_ordering.py
"""

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import Deployment, ISSConfig, NetworkConfig, WorkloadConfig
from repro.core.types import is_nil


@dataclass
class Block:
    """A block in the derived chain: one committed (non-⊥, non-empty) batch."""

    height: int
    batch_sn: int
    previous_hash: bytes
    transactions: int
    payload_bytes: int

    def header_hash(self) -> bytes:
        h = hashlib.sha256()
        h.update(self.height.to_bytes(8, "little"))
        h.update(self.batch_sn.to_bytes(8, "little"))
        h.update(self.previous_hash)
        h.update(self.transactions.to_bytes(4, "little"))
        h.update(self.payload_bytes.to_bytes(8, "little"))
        return h.digest()


def derive_chain(node) -> List[Block]:
    """Turn a node's delivered log prefix into a hash-linked chain of blocks."""
    chain: List[Block] = []
    previous = hashlib.sha256(b"genesis").digest()
    for sn in range(node.log.first_undelivered):
        entry = node.log.entry(sn)
        if is_nil(entry) or len(entry) == 0:
            continue  # ⊥ and empty batches produce no block
        block = Block(
            height=len(chain),
            batch_sn=sn,
            previous_hash=previous,
            transactions=len(entry),
            payload_bytes=entry.size_bytes(),
        )
        chain.append(block)
        previous = block.header_hash()
    return chain


def run_ordering_service(protocol: str) -> Dict[str, object]:
    overrides = dict(
        epoch_length=16,
        max_batch_size=32,
        batch_rate=8.0,
        max_batch_timeout=0.5,
        view_change_timeout=5.0,
        epoch_change_timeout=5.0,
    )
    if protocol == "hotstuff":
        overrides.update(batch_rate=None, min_batch_timeout=0.1, max_batch_timeout=0.0, min_segment_size=4)
    config = ISSConfig(num_nodes=4, protocol=protocol, **overrides)
    workload = WorkloadConfig(num_clients=4, total_rate=200.0, duration=8.0, payload_size=500)
    deployment = Deployment(config, network_config=NetworkConfig(num_datacenters=4), workload=workload)
    result = deployment.run()

    chains = {node.node_id: derive_chain(node) for node in result.nodes}
    tip_hashes = {node_id: (chain[-1].header_hash().hex()[:16] if chain else "-")
                  for node_id, chain in chains.items()}
    heights = {node_id: len(chain) for node_id, chain in chains.items()}
    assert len(set(tip_hashes.values())) == 1, "replicas derived different chains!"

    return {
        "protocol": protocol,
        "throughput": result.report.throughput,
        "latency_ms": result.report.latency.mean * 1000,
        "blocks": heights[0],
        "tip": tip_hashes[0],
        "transactions": result.report.completed,
    }


def main() -> None:
    print("=== Blockchain ordering service on ISS (4 orderer nodes) ===\n")
    rows = [run_ordering_service("pbft"), run_ordering_service("hotstuff")]
    print(f"{'backend':10s} {'blocks':>7s} {'txs':>7s} {'tput (tx/s)':>12s} {'latency (ms)':>13s}  chain tip")
    for row in rows:
        print(f"{row['protocol']:10s} {row['blocks']:7d} {row['transactions']:7d} "
              f"{row['throughput']:12.1f} {row['latency_ms']:13.1f}  {row['tip']}")
    print("\nAll orderer nodes derived identical chains for both backends.")


if __name__ == "__main__":
    main()
