#!/usr/bin/env python3
"""A replicated key-value store on top of ISS.

The paper positions ISS as a classic SMR service "applicable to any
replicated service, such as resilient databases".  This example builds
exactly that: every node feeds the totally ordered request stream into a
deterministic key-value state machine, and the example verifies that all
replicas end up with identical state even though requests arrive at
different nodes in different orders.

Run with:  python examples/replicated_kv_store.py
"""

import json
from typing import Dict

from repro import Deployment, ISSConfig, NetworkConfig, WorkloadConfig
from repro.core.types import DeliveredRequest


class KeyValueStateMachine:
    """A deterministic state machine executing PUT/GET/DEL operations.

    Operations are JSON-encoded in the request payload.  Because every
    replica executes the same totally ordered stream (SMR Agreement +
    Totality), all replicas reach the same state.
    """

    def __init__(self) -> None:
        self.store: Dict[str, str] = {}
        self.applied = 0

    def apply(self, delivered: DeliveredRequest) -> None:
        try:
            operation = json.loads(delivered.request.payload.decode() or "{}")
        except json.JSONDecodeError:
            operation = {}
        kind = operation.get("op")
        if kind == "put":
            self.store[operation["key"]] = operation["value"]
        elif kind == "del":
            self.store.pop(operation.get("key", ""), None)
        # Reads ("get") need no state change; they are ordered for linearizability.
        self.applied += 1

    def digest(self) -> str:
        return json.dumps(sorted(self.store.items()))


def main() -> None:
    config = ISSConfig(
        num_nodes=4,
        protocol="pbft",
        epoch_length=16,
        max_batch_size=32,
        batch_rate=8.0,
        max_batch_timeout=0.5,
        view_change_timeout=5.0,
        epoch_change_timeout=5.0,
    )
    workload = WorkloadConfig(num_clients=3, total_rate=150.0, duration=8.0, payload_size=64)
    deployment = Deployment(config, network_config=NetworkConfig(num_datacenters=4), workload=workload)

    # One state machine per replica, fed by the node's SMR-DELIVER events.
    state_machines = {node.node_id: KeyValueStateMachine() for node in deployment.nodes}
    original_callback = deployment.collector.record_delivery

    def deliver_and_execute(node_id, delivered):
        state_machines[node_id].apply(delivered)
        original_callback(node_id, delivered)

    for node in deployment.nodes:
        node.on_deliver = deliver_and_execute

    # Replace the generated payloads with meaningful KV operations: monkey-patch
    # each client's submit path through the generator's payload hook.
    counter = {"n": 0}

    def kv_payload() -> bytes:
        counter["n"] += 1
        key = f"key-{counter['n'] % 20}"
        if counter["n"] % 5 == 0:
            return json.dumps({"op": "del", "key": key}).encode()
        if counter["n"] % 7 == 0:
            return json.dumps({"op": "get", "key": key}).encode()
        return json.dumps({"op": "put", "key": key, "value": f"v{counter['n']}"}).encode()

    generator = deployment.generator
    original_submit = generator._submit

    def submit_with_kv_payload(client):
        generator._payload = kv_payload()
        original_submit(client)

    generator._submit = submit_with_kv_payload

    result = deployment.run()

    print("=== Replicated key-value store on ISS-PBFT ===")
    print(f"operations ordered : {result.report.completed}")
    print(f"throughput         : {result.report.throughput:.1f} op/s")
    print(f"mean latency       : {result.report.latency.mean * 1000:.1f} ms")

    digests = {node_id: sm.digest() for node_id, sm in state_machines.items()}
    applied = {node_id: sm.applied for node_id, sm in state_machines.items()}
    print("\nreplica state:")
    for node_id in sorted(digests):
        print(f"  node {node_id}: applied={applied[node_id]:5d} keys={len(state_machines[node_id].store):3d} "
              f"state-digest={hash(digests[node_id]) & 0xFFFFFFFF:08x}")

    unique_states = set(digests.values())
    if len(unique_states) == 1:
        print("\nAll replicas converged to the same key-value state — SMR holds.")
    else:
        raise SystemExit("Replica state divergence detected — this should never happen.")


if __name__ == "__main__":
    main()
