#!/usr/bin/env python3
"""Fault-tolerance demo: leader crashes and Byzantine stragglers.

Reproduces, at toy scale, the behaviours of Section 6.4 of the paper:

* a leader crashing at the start of an epoch leaves ⊥ entries in its segment
  and is then excluded by the BLACKLIST leader-selection policy,
* a Byzantine straggler (slow but never quiet) cannot be blamed by the
  failure detector and drags latency up for everyone,
* in all cases safety (identical logs) and liveness (all requests delivered)
  are preserved.

Run with:  python examples/fault_tolerance_demo.py
"""

from repro import Deployment, ISSConfig, NetworkConfig, WorkloadConfig
from repro.core.types import is_nil
from repro.workload import epoch_start_crashes, stragglers


def build_deployment(crash=False, straggler=False):
    config = ISSConfig(
        num_nodes=4,
        protocol="pbft",
        epoch_length=16,
        max_batch_size=32,
        batch_rate=8.0,
        max_batch_timeout=0.5,
        view_change_timeout=4.0,
        epoch_change_timeout=4.0,
    )
    workload = WorkloadConfig(num_clients=4, total_rate=200.0, duration=20.0, payload_size=256)
    return Deployment(
        config,
        network_config=NetworkConfig(num_datacenters=4),
        workload=workload,
        crash_specs=epoch_start_crashes(1, config.num_nodes, epoch=0) if crash else (),
        straggler_specs=stragglers(1, config.num_nodes, delay=2.0) if straggler else (),
        drain_time=10.0,
    )


def check_safety(result) -> bool:
    """All correct nodes hold the same delivered log prefix."""
    alive = [n for n in result.nodes if not n.crashed]
    reference = alive[0].log
    for node in alive[1:]:
        common = min(reference.first_undelivered, node.log.first_undelivered)
        for sn in range(common):
            a, b = reference.entry(sn), node.log.entry(sn)
            if is_nil(a) != is_nil(b):
                return False
            if not is_nil(a) and a.digest() != b.digest():
                return False
    return True


def describe(name, result):
    report = result.report
    alive = [n for n in result.nodes if not n.crashed]
    sample = alive[0]
    print(f"--- {name} ---")
    print(f"  delivered            : {report.completed}/{report.submitted} requests")
    print(f"  throughput           : {report.throughput:8.1f} req/s")
    print(f"  mean / p95 latency   : {report.latency.mean:6.2f} s / {report.latency.p95:6.2f} s")
    print(f"  epochs completed     : {sample.epochs_completed}")
    print(f"  ⊥ (nil) log entries  : {sample.nil_committed}")
    leaders = sample.manager.leaders_for(sample.current_epoch)
    print(f"  current leaderset    : {leaders}")
    print(f"  safety (equal logs)  : {'OK' if check_safety(result) else 'VIOLATED'}")
    print()
    return report


def main() -> None:
    print("=== ISS under faults (4 nodes, PBFT, BLACKLIST policy) ===\n")

    baseline = describe("fault-free baseline", build_deployment().run())
    crash = describe("one leader crashes at epoch start", build_deployment(crash=True).run())
    slow = describe("one Byzantine straggler (2 s proposal delay)", build_deployment(straggler=True).run())

    print("summary:")
    print(f"  crash   : latency x{crash.latency.mean / baseline.latency.mean:4.1f}, "
          f"crashed leader removed from leaderset, all requests still delivered")
    print(f"  straggler: throughput x{slow.throughput / baseline.throughput:4.2f}, "
          f"latency x{slow.latency.mean / baseline.latency.mean:4.1f}, "
          f"never suspected (no ⊥ entries) — matches the paper's Figure 11/12 behaviour")


if __name__ == "__main__":
    main()
