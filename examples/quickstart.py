#!/usr/bin/env python3
"""Quickstart: run a small ISS-PBFT deployment and print its performance.

This is the smallest end-to-end use of the library: build a 4-node ISS
deployment ordering requests from 4 clients over the simulated WAN, run it
for 10 virtual seconds, and print throughput, latency and per-node state.

Run with:  python examples/quickstart.py
"""

from repro import Deployment, ISSConfig, NetworkConfig, WorkloadConfig


def main() -> None:
    # 1. Configure ISS: 4 nodes running PBFT as the Sequenced Broadcast
    #    implementation, short epochs so the example shows several epoch
    #    transitions within 10 virtual seconds.
    config = ISSConfig(
        num_nodes=4,
        protocol="pbft",
        epoch_length=16,
        max_batch_size=64,
        batch_rate=8.0,          # 8 batches/s across all leaders
        max_batch_timeout=1.0,
        view_change_timeout=5.0,
        epoch_change_timeout=5.0,
    )

    # 2. Describe the simulated WAN and the client workload.
    network = NetworkConfig(bandwidth_bps=1e9, num_datacenters=4)
    workload = WorkloadConfig(
        num_clients=4,
        total_rate=300.0,        # requests per second, Poisson arrivals
        duration=10.0,           # virtual seconds
        payload_size=500,        # the paper's average-Bitcoin-transaction payload
    )

    # 3. Build and run the deployment.
    deployment = Deployment(config, network_config=network, workload=workload)
    result = deployment.run()
    report = result.report

    # 4. Inspect the results.
    print("=== ISS-PBFT quickstart (4 nodes, 4 clients, 10 virtual seconds) ===")
    print(f"requests submitted : {report.submitted}")
    print(f"requests delivered : {report.completed}")
    print(f"throughput         : {report.throughput:8.1f} req/s")
    print(f"mean latency       : {report.latency.mean * 1000:8.1f} ms")
    print(f"95th pct latency   : {report.latency.p95 * 1000:8.1f} ms")
    print(f"protocol messages  : {int(report.extra['messages_sent'])}")

    node = result.nodes[0]
    print("\nper-node view (node 0):")
    print(f"  epochs completed : {node.epochs_completed}")
    print(f"  batches committed: {node.batches_committed}")
    print(f"  log length       : {node.log.committed_count()} positions")
    print(f"  delivered requests in total order: {node.log.total_delivered_requests}")

    leaders = node.manager.leaders_for(node.current_epoch)
    print(f"  leaderset of current epoch {node.current_epoch}: {leaders}")


if __name__ == "__main__":
    main()
