#!/usr/bin/env python
"""Live-backend wall-clock benchmark: real cluster vs simulator model.

Boots a real 4-node PBFT cluster on localhost (one OS process per
replica, TCP transport, fsync'd storage) twice — wire batching off and
on — and drives a fixed number of replicated-KV puts from closed-loop
clients, measuring **wall-clock** throughput and latency.  Then runs the
deterministic simulator over the same ``ISSConfig`` and reports its
modelled throughput/latency next to the measured ones, so the tracked
artefact shows how the modelled backend relates to a real deployment on
the CI host.

Writes ``BENCH_live_wallclock.json`` in the repo root.  Wall-clock
figures are host-dependent by nature: the artefact tracks the trajectory,
it is not a pass/fail gate (the pass/fail live gate is
``repro.live_smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_live_wallclock.py [--ops N]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import smokelib  # noqa: E402
from repro.app.kv import KVClient  # noqa: E402
from repro.core.config import (  # noqa: E402
    ISSConfig,
    PROTOCOL_PBFT,
    WorkloadConfig,
)
from repro.crypto.signatures import KeyStore  # noqa: E402
from repro.harness.runner import run_experiment  # noqa: E402
from repro.metrics.collector import LatencySummary  # noqa: E402
from repro.net.clock import WallClock  # noqa: E402
from repro.net.deploy import (  # noqa: E402
    LiveClusterSpec,
    LiveDeployment,
    live_base_port,
    live_host,
)
from repro.net.transport import TcpTransport  # noqa: E402

NUM_NODES = 4
NUM_CLIENTS = 3
DEFAULT_OPS = 45
SEED = 21
EPOCH_LENGTH = 16
#: Wire-batching flush tick for the batched mode (matches the simulator's
#: scaled-WAN default in harness.scenarios).
FLUSH_INTERVAL = 0.02
#: Offset from REPRO_LIVE_BASE_PORT so the bench never collides with a
#: concurrently running live smoke gate on the same host.
PORT_OFFSET = 170


def make_config() -> ISSConfig:
    """The shared protocol configuration for both backends."""
    return ISSConfig(
        num_nodes=NUM_NODES,
        protocol=PROTOCOL_PBFT,
        epoch_length=EPOCH_LENGTH,
        random_seed=SEED,
        client_retry_timeout=0.5,
        client_retry_max_timeout=4.0,
    )


async def _drive_puts(spec: LiveClusterSpec, ops: int) -> Dict[str, float]:
    """Closed-loop put workload against a running cluster; wall figures."""
    clock = WallClock(seed=SEED)
    transport = TcpTransport(clock, peers=spec.peer_map())
    await transport.start()
    key_store = KeyStore(deployment_seed=spec.config.random_seed)
    clients = [
        KVClient(client_id, spec.config, clock, transport, key_store)
        for client_id in spec.client_ids
    ]
    t0 = time.monotonic()
    outcomes = await asyncio.gather(
        *[
            clients[i % len(clients)].put(f"key{i}", f"value{i}", timeout=120.0)
            for i in range(ops)
        ]
    )
    elapsed = time.monotonic() - t0
    await transport.close()
    summary = LatencySummary.from_samples([o.latency for o in outcomes])
    return {
        "ops": len(outcomes),
        "wall_seconds": round(elapsed, 3),
        "throughput_ops_per_s": round(len(outcomes) / elapsed, 2),
        "latency_mean": round(summary.mean, 4),
        "latency_p50": round(summary.p50, 4),
        "latency_p95": round(summary.p95, 4),
        "latency_max": round(summary.maximum, 4),
    }


def run_live_mode(ops: int, batch_flush_interval: float) -> Dict[str, float]:
    """One live-cluster measurement at the given wire-batching setting."""
    with tempfile.TemporaryDirectory(prefix="repro-live-bench-") as data_dir:
        spec = LiveClusterSpec(
            config=make_config(),
            data_dir=data_dir,
            base_port=live_base_port() + PORT_OFFSET,
            host=live_host(),
            client_ids=tuple(range(NUM_CLIENTS)),
            batch_flush_interval=batch_flush_interval,
        )
        with LiveDeployment(spec):
            return asyncio.run(_drive_puts(spec, ops))


def run_simulator_reference(ops: int) -> Dict[str, float]:
    """The simulator's modelled figures over the same protocol config.

    The simulator drives an open-loop rate workload, so the comparison is
    of modelled steady-state throughput/latency against the live
    closed-loop measurement — a calibration reference, not an identity.
    """
    config = make_config()
    workload = WorkloadConfig(
        num_clients=NUM_CLIENTS,
        total_rate=float(ops),
        duration=10.0,
        payload_size=64,
    )
    report = run_experiment(config, workload)
    return {
        "ops": report.completed,
        "modelled_seconds": report.duration,
        "throughput_ops_per_s": round(report.throughput, 2),
        "latency_mean": round(report.latency.mean, 4),
        "latency_p50": round(report.latency.p50, 4),
        "latency_p95": round(report.latency.p95, 4),
        "latency_max": round(report.latency.maximum, 4),
    }


def main(argv: Optional[List[str]] = None) -> int:
    """Run both live modes plus the simulator reference; write the artefact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ops", type=int, default=DEFAULT_OPS, help="KV puts per live mode"
    )
    args = parser.parse_args(argv)

    print(f"live wall-clock bench: {NUM_NODES} pbft nodes, {args.ops} puts/mode ...")
    unbatched = run_live_mode(args.ops, batch_flush_interval=0.0)
    print(f"  live unbatched: {unbatched}")
    batched = run_live_mode(args.ops, batch_flush_interval=FLUSH_INTERVAL)
    print(f"  live batched:   {batched}")
    simulated = run_simulator_reference(args.ops)
    print(f"  simulator:      {simulated}")

    figures = {
        "num_nodes": NUM_NODES,
        "num_clients": NUM_CLIENTS,
        "protocol": PROTOCOL_PBFT,
        "live_unbatched": unbatched,
        "live_batched": batched,
        "simulator_reference": simulated,
    }
    bench_path = smokelib.bench_output_path("BENCH_live_wallclock.json")
    smokelib.write_bench(bench_path, "benchmarks/bench_live_wallclock.py", figures)
    print(f"wrote {bench_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
