"""Figure 7 — impact of leader-selection policies on latency under one crash.

Paper result: with one epoch-start or epoch-end crash, BLACKLIST and BACKOFF
keep mean/tail latency lower than SIMPLE because they remove the crashed node
from the leaderset; BLACKLIST performs best (permanent removal); mean latency
stays below 8 s and the 95th percentile below 17 s for all policies.
"""

import pytest

from repro.core.config import POLICY_BACKOFF, POLICY_BLACKLIST, POLICY_SIMPLE
from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration


def test_fig7_policy_comparison(benchmark):
    def scenario():
        rows = []
        for crash_kind in ("epoch-start", "epoch-end"):
            rows.extend(
                scenarios.leader_policy_comparison(
                    num_nodes=4,
                    rate=400.0,
                    duration=scaled_duration(24.0),
                    crash_kind=crash_kind,
                )
            )
        return rows

    rows = run_scenario(benchmark, scenario, "fig7")
    print_banner("Figure 7: leader-selection policies under one crash fault")
    print(
        format_table(
            ["crash", "policy", "mean latency (s)", "p95 latency (s)", "throughput (req/s)"],
            [
                [r["crash"], r["policy"], f"{r['latency_mean']:.2f}", f"{r['latency_p95']:.2f}",
                 f"{r['throughput']:.0f}"]
                for r in rows
            ],
        )
    )

    def latency(crash, policy):
        return next(r for r in rows if r["crash"] == crash and r["policy"] == policy)["latency_mean"]

    for crash in ("epoch-start", "epoch-end"):
        # Policies that remove the crashed leader beat SIMPLE (paper's ordering).
        assert latency(crash, POLICY_BLACKLIST) <= latency(crash, POLICY_SIMPLE)
        assert latency(crash, POLICY_BACKOFF) <= latency(crash, POLICY_SIMPLE) * 1.2
    benchmark.extra_info["rows"] = rows
