"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation: it runs the corresponding scenario from
:mod:`repro.harness.scenarios` once (pytest-benchmark measures the wall-clock
cost of regenerating the artefact), prints the same rows/series the paper
reports, and attaches the structured results to ``benchmark.extra_info`` so
they survive in the JSON output.

Scaling: all scenarios run on the scaled-down simulated WAN described in
EXPERIMENTS.md.  ``REPRO_BENCH_SCALE`` multiplies node counts and durations
(default 2 since the hot-path overhaul and the wire-batching layer made
larger runs affordable); ``REPRO_FLUSH_INTERVAL`` tunes the wire-batching
flush tick (0 disables batching).  See the table in PERF.md.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.harness.scenarios import bench_scale  # noqa: E402


def run_scenario(benchmark, fn: Callable, label: str):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    result_holder = {}

    def once():
        result_holder["result"] = fn()
        return result_holder["result"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = label
    return result_holder["result"]


def scale() -> float:
    """Benchmark scale factor (shared with :mod:`repro.harness.scenarios`)."""
    return bench_scale()


def scaled_nodes(base: Sequence[int]) -> List[int]:
    """Scale a list of node counts by REPRO_BENCH_SCALE (keeping them distinct)."""
    factor = scale()
    scaled = sorted({max(4, int(round(n * factor))) for n in base})
    return scaled


def scaled_duration(base: float) -> float:
    return base * scale()
