"""Table 1 — ISS configuration parameters used in evaluation.

Regenerates the paper's parameter table from :func:`repro.core.config.paper_config`
and checks the values against the published numbers.
"""

import pytest

from repro.core.config import paper_config, PROTOCOL_HOTSTUFF, PROTOCOL_PBFT, PROTOCOL_RAFT
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario


#: The rows of Table 1 as published (protocol -> expected values).
TABLE1_EXPECTED = {
    PROTOCOL_PBFT: dict(max_batch_size=2048, batch_rate=32.0, min_batch_timeout=0.0,
                        max_batch_timeout=4.0, epoch_length=256, min_segment_size=2,
                        epoch_change_timeout=10.0, buckets_per_leader=16, client_signatures=True),
    PROTOCOL_HOTSTUFF: dict(max_batch_size=4096, batch_rate=None, min_batch_timeout=1.0,
                            max_batch_timeout=0.0, epoch_length=256, min_segment_size=16,
                            epoch_change_timeout=10.0, buckets_per_leader=16, client_signatures=True),
    PROTOCOL_RAFT: dict(max_batch_size=4096, batch_rate=32.0, min_batch_timeout=0.0,
                        max_batch_timeout=4.0, epoch_length=256, min_segment_size=16,
                        epoch_change_timeout=10.0, buckets_per_leader=16, client_signatures=False),
}


def build_table():
    rows = []
    for protocol in (PROTOCOL_PBFT, PROTOCOL_HOTSTUFF, PROTOCOL_RAFT):
        config = paper_config(protocol, 32)
        rows.append(
            [
                protocol,
                config.max_batch_size,
                config.batch_rate if config.batch_rate is not None else "n/a",
                config.min_batch_timeout,
                config.max_batch_timeout,
                config.epoch_length,
                config.min_segment_size,
                config.epoch_change_timeout,
                config.buckets_per_leader,
                "ECDSA(sim)" if config.client_signatures else "none",
            ]
        )
    return rows


def test_table1_configuration(benchmark):
    rows = run_scenario(benchmark, build_table, "table1")
    print_banner("Table 1: ISS configuration parameters used in evaluation")
    print(
        format_table(
            ["protocol", "max batch", "batch rate", "min timeout", "max timeout",
             "epoch len", "min segment", "epoch-change TO", "buckets/leader", "client sigs"],
            rows,
        )
    )
    for protocol, expected in TABLE1_EXPECTED.items():
        config = paper_config(protocol, 32)
        for field, value in expected.items():
            assert getattr(config, field) == value, f"{protocol}.{field}"
    benchmark.extra_info["rows"] = len(rows)
