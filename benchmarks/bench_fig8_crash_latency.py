"""Figure 8 — latency vs experiment duration under crash faults (BLACKLIST).

Paper result: mean and tail latency converge towards the fault-free values as
the experiment duration grows (the BLACKLIST policy removes the crashed
leader once detected, so the one-off penalty is amortised); epoch-end crashes
have a stronger impact than epoch-start crashes.
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration


def test_fig8_crash_latency_over_duration(benchmark):
    durations = [scaled_duration(d) for d in (15.0, 30.0)]

    def scenario():
        rows = []
        rows.extend(
            scenarios.crash_latency_over_duration(
                num_nodes=4, rate=400.0, durations=durations, fault_counts=(0, 1),
                crash_kind="epoch-start",
            )
        )
        rows.extend(
            scenarios.crash_latency_over_duration(
                num_nodes=4, rate=400.0, durations=durations, fault_counts=(1,),
                crash_kind="epoch-end",
            )
        )
        return rows

    rows = run_scenario(benchmark, scenario, "fig8")
    print_banner("Figure 8: latency vs experiment duration under crash faults (Blacklist)")
    print(
        format_table(
            ["faults", "crash kind", "duration (s)", "mean latency (s)", "p95 latency (s)"],
            [
                [r["faults"], r["crash"], f"{r['duration']:.0f}", f"{r['latency_mean']:.2f}",
                 f"{r['latency_p95']:.2f}"]
                for r in rows
            ],
        )
    )

    def find(faults, crash, duration):
        return next(
            r for r in rows if r["faults"] == faults and r["crash"] == crash and r["duration"] == duration
        )

    short, long = durations
    fault_free = find(0, "none", long)
    start_short = find(1, "epoch-start", short)
    start_long = find(1, "epoch-start", long)
    end_long = find(1, "epoch-end", long)
    # Longer experiments amortise the one-off crash penalty (latency converges
    # towards fault-free), and a crash always costs more than no crash.
    assert start_long["latency_mean"] <= start_short["latency_mean"] * 1.05
    assert start_long["latency_mean"] >= fault_free["latency_mean"]
    assert end_long["latency_mean"] >= fault_free["latency_mean"]
    # Note on the epoch-start vs epoch-end ordering: the paper (32 nodes) sees
    # epoch-end crashes hurt more because they delay the epoch change for
    # everyone while an epoch-start crash only affects 1/n of the buckets.  At
    # the scaled-down node count used here, 1/n is large, so the epoch-start
    # penalty can dominate; EXPERIMENTS.md discusses this scale artefact.  The
    # mechanics of both fault kinds are asserted separately in Figure 9.
    benchmark.extra_info["rows"] = rows
