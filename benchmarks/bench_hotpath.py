#!/usr/bin/env python
"""Microbenchmarks for the simulation fast paths.

Times the individual hot paths that dominate large runs (see PERF.md):
the simulator's allocation-free event dispatch, Timer-based dispatch and
cancellation compaction, ``Network.send`` (direct and through the
wire-batching layer), request-id hashing, memoized signature verification,
and the bucket-pool request cycle.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--json out.json]

Each benchmark reports operations per second; higher is better.  These are
microbenchmarks for diagnosing *which* layer regressed — the end-to-end
number that gates CI lives in ``benchmarks/run_perf_smoke.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.buckets import BucketPool  # noqa: E402
from repro.core.config import NetworkConfig  # noqa: E402
from repro.core.types import Request, RequestId  # noqa: E402
from repro.core.validation import request_signing_payload, sign_request  # noqa: E402
from repro.crypto.signatures import KeyStore  # noqa: E402
from repro.metrics.report import format_table, print_banner  # noqa: E402
from repro.sim.latency import LatencyModel  # noqa: E402
from repro.sim.network import Network  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402


def _timed(fn, ops: int) -> float:
    """Run ``fn`` once and return operations per second."""
    start = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - start
    return ops / elapsed if elapsed > 0 else float("inf")


def bench_sim_fast_dispatch(n: int = 200_000) -> float:
    """schedule_callback + run: the per-message delivery path."""
    sim = Simulator(seed=1)

    def run():
        noop = lambda: None  # noqa: E731
        for i in range(n):
            sim.schedule_callback(i * 1e-6, noop)
        sim.run()

    return _timed(run, n)


def bench_sim_timer_dispatch(n: int = 200_000) -> float:
    """schedule (Timer handle) + run: the cancellable-timeout path."""
    sim = Simulator(seed=1)

    def run():
        noop = lambda: None  # noqa: E731
        for i in range(n):
            sim.schedule(i * 1e-6, noop)
        sim.run()

    return _timed(run, n)


def bench_timer_cancel(n: int = 200_000) -> float:
    """Schedule timers and cancel 90% of them (exercises lazy compaction)."""
    sim = Simulator(seed=1)

    def run():
        noop = lambda: None  # noqa: E731
        timers = [sim.schedule(i * 1e-6, noop) for i in range(n)]
        for index, timer in enumerate(timers):
            if index % 10:
                timer.cancel()
        sim.run()
        assert sim.pending_events() == 0

    return _timed(run, n)


def bench_network_send(n: int = 100_000) -> float:
    """Point-to-point sends through the full NIC/latency model."""
    sim = Simulator(seed=1)
    config = NetworkConfig()
    network = Network(sim, config, LatencyModel(config, 4))
    for node in range(4):
        network.register(node, lambda src, msg: None)

    def run():
        for i in range(n):
            network.send(i & 3, (i + 1) & 3, "ping")
        sim.run()

    return _timed(run, n)


def bench_network_send_batched(n: int = 100_000) -> float:
    """Batchable sends through the wire-batching layer (enqueue + flush).

    Sends PBFT-style votes across a 4-node network with a 1 ms flush tick:
    each send takes the batcher detour, and every (src, dst, tick) bucket
    leaves the NIC as a single coalesced frame.
    """
    from repro.pbft.messages import Prepare

    sim = Simulator(seed=1)
    config = NetworkConfig(batch_flush_interval=0.001)
    network = Network(sim, config, LatencyModel(config, 4))
    for node in range(4):
        network.register(node, lambda src, msg: None)
    votes = [Prepare(view=0, sn=i & 31, digest=b"d" * 32) for i in range(64)]

    def run():
        send = network.send
        for i in range(n):
            # Spread sends over virtual time so flush ticks keep firing.
            if i % 256 == 0:
                sim.run(until=sim.now + 0.001)
            send(i & 3, (i + 1) & 3, votes[i & 63])
        sim.run()

    return _timed(run, n)


def bench_request_hashing(n: int = 500_000) -> float:
    """Set membership over request ids (cached hash fast path)."""
    rids = [RequestId(client=i & 15, timestamp=i) for i in range(2000)]
    seen = set(rids)

    def run():
        for i in range(n):
            _ = rids[i % 2000] in seen

    return _timed(run, n)


def bench_verify_cached(n: int = 20_000) -> float:
    """Re-verification of an already-verified request (memoized path)."""
    store = KeyStore(deployment_seed=3)
    request = sign_request(
        store, Request(rid=RequestId(client=1, timestamp=1), payload=b"x" * 500)
    )
    digest = request.digest()
    payload = request_signing_payload(request)
    store.verify_digest(1, digest, request.signature, lambda: payload)  # warm

    def run():
        for _ in range(n):
            store.verify_digest(1, digest, request.signature, lambda: payload)

    return _timed(run, n)


def bench_verify_cold(n: int = 5_000) -> float:
    """First-time verification (one HMAC per unique request)."""
    store = KeyStore(deployment_seed=3)
    requests = [
        sign_request(store, Request(rid=RequestId(client=1, timestamp=t), payload=b"x" * 500))
        for t in range(n)
    ]
    cold_store = KeyStore(deployment_seed=3)

    def run():
        for request in requests:
            cold_store.verify_digest(
                request.rid.client,
                request.digest(),
                request.signature,
                lambda r=request: request_signing_payload(r),
            )

    return _timed(run, n)


def bench_bucket_cycle(n: int = 50_000) -> float:
    """add_request → cut_batch → mark_delivered over a realistic pool."""
    pool = BucketPool(num_buckets=128)
    requests = [
        Request(rid=RequestId(client=i & 15, timestamp=i >> 4), payload=b"x" * 32)
        for i in range(n)
    ]
    buckets = list(range(128))

    def run():
        for request in requests:
            pool.add_request(request)
        while True:
            batch = pool.cut_batch(buckets, 2048)
            if not batch:
                break
            for request in batch:
                pool.mark_delivered(request)

    return _timed(run, n)


BENCHMARKS = [
    ("sim fast dispatch", bench_sim_fast_dispatch, "schedule_callback + run, per event"),
    ("sim timer dispatch", bench_sim_timer_dispatch, "schedule (Timer) + run, per event"),
    ("timer cancel 90%", bench_timer_cancel, "schedule + cancel + compaction, per timer"),
    ("network send", bench_network_send, "full NIC/latency send, per message"),
    ("network send batched", bench_network_send_batched, "batched send incl. flush, per vote"),
    ("request-id set probe", bench_request_hashing, "cached-hash set membership, per probe"),
    ("verify (memoized)", bench_verify_cached, "re-verification dict hit, per verify"),
    ("verify (cold)", bench_verify_cold, "first verification incl. HMAC, per verify"),
    ("bucket cycle", bench_bucket_cycle, "add + cut + mark_delivered, per request"),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="hot-path microbenchmarks")
    parser.add_argument("--json", default=None, help="also write results to this JSON file")
    args = parser.parse_args(argv)

    print_banner("Hot-path microbenchmarks (ops/s, higher is better)")
    rows = []
    results = {}
    for name, fn, what in BENCHMARKS:
        ops_per_sec = fn()
        results[name] = round(ops_per_sec, 1)
        rows.append([name, f"{ops_per_sec:,.0f}", what])
        print(f"  {name:<22} {ops_per_sec:>12,.0f} ops/s")
    print()
    print(format_table(["benchmark", "ops/s", "measures"], rows))

    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
