"""Membership figure — joining cost vs log size, rolling-upgrade dip.

Wraps the dynamic-membership scenarios
(:func:`repro.harness.scenarios.membership_join`,
:func:`repro.harness.scenarios.rolling_upgrade`) the way the other figure
benchmarks wrap theirs, and emits the rows to ``BENCH_membership.json`` in
the repository root so the reconfiguration-cost trajectory is tracked
across PRs.

Two expected shapes:

* **Time to join vs log size** — the later a replica joins, the more
  committed log it must state-transfer before it reaches the cluster
  frontier, so transferred entries/bytes grow with the log size at join
  while the replica still always catches up.
* **Rolling-upgrade throughput dip** — cycling every replica through a
  remove + re-add (one out at a time) keeps ordering live, so throughput
  during the upgrade stays within a bounded dip of an undisturbed run at
  the same offered load, and every client request still completes.
"""

import json
from pathlib import Path

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario

#: Where the figure's rows are persisted (repository root, like the other
#: BENCH_*.json artefacts).
OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_membership.json"

#: Join times swept by the time-to-join figure: the offered load is fixed,
#: so a later join means a strictly larger committed log to catch up on.
JOIN_TIMES = (3.0, 7.0, 11.0)

#: Worst acceptable upgrade/baseline throughput ratio.  The upgrade run
#: serves the same offered load with one replica out at a time, so the dip
#: should stay moderate — a collapse below this bound means reconfiguration
#: is stalling ordering rather than riding through it.
MIN_UPGRADE_THROUGHPUT_RATIO = 0.5


def _join_figure_rows():
    rows = []
    for join_time in JOIN_TIMES:
        row = scenarios.membership_join(join_time=join_time, duration=20.0)
        assert row["all_joined"] and len(row["joins"]) == 1, row
        assert not row["violations"], row["violations"]
        join = row["joins"][0]
        rows.append({
            "join_time": join_time,
            "log_size_at_join": join["log_size_at_join"],
            "time_to_join": join["time_to_join"],
            "state_transfer_entries": join["state_transfer_entries"],
            "state_transfer_bytes": join["state_transfer_bytes"],
            "throughput": row["throughput"],
            "all_complete": row["all_complete"],
        })
    return rows


def test_time_to_join_over_log_size(benchmark):
    rows = run_scenario(benchmark, _join_figure_rows, "membership-join")

    print_banner("Time to join over log size at join (ISS-PBFT, 4+1 nodes)")
    print(
        format_table(
            [
                "join time (s)", "log size at join", "time to join (s)",
                "transfer entries", "transfer bytes",
            ],
            [
                [
                    f"{r['join_time']:.1f}", int(r["log_size_at_join"]),
                    f"{r['time_to_join']:.2f}",
                    int(r["state_transfer_entries"]),
                    int(r["state_transfer_bytes"]),
                ]
                for r in rows
            ],
        )
    )

    for r in rows:
        assert r["all_complete"], r
    # Later join ⇒ strictly more committed log ⇒ at least as much to fetch.
    log_sizes = [r["log_size_at_join"] for r in rows]
    transfer = [r["state_transfer_entries"] for r in rows]
    assert log_sizes == sorted(log_sizes) and log_sizes[0] < log_sizes[-1]
    assert transfer == sorted(transfer)
    assert transfer[-1] > 0

    _merge_output({"join_over_log_size": rows})
    benchmark.extra_info["rows"] = rows


def _upgrade_figure_rows():
    upgrade = scenarios.rolling_upgrade()
    # Baseline: identical load, duration and seed, no membership schedule.
    duration = 3.0 + 2 * upgrade["period"] * upgrade["nodes"] + 6.0
    baseline = scenarios.membership_point(
        upgrade["protocol"], upgrade["nodes"], rate=300.0,
        duration=duration, drain_time=15.0,
    )
    return upgrade, baseline


def test_rolling_upgrade_throughput_dip(benchmark):
    upgrade, baseline = run_scenario(
        benchmark, _upgrade_figure_rows, "membership-rolling-upgrade"
    )
    ratio = upgrade["throughput"] / baseline["throughput"]

    print_banner("Rolling-upgrade throughput dip (ISS-PBFT, 4 nodes)")
    print(
        format_table(
            ["run", "tput (req/s)", "latency p95 (s)", "complete", "config txs"],
            [
                ["baseline", f"{baseline['throughput']:.0f}",
                 f"{baseline['latency_p95']:.2f}",
                 baseline["all_complete"], baseline["config_txs_committed"]],
                ["rolling upgrade", f"{upgrade['throughput']:.0f}",
                 f"{upgrade['latency_p95']:.2f}",
                 upgrade["all_complete"], upgrade["config_txs_committed"]],
            ],
        )
    )
    print(f"throughput ratio (upgrade/baseline): {ratio:.3f}")

    assert upgrade["upgrade_complete"], upgrade
    assert upgrade["all_complete"] and baseline["all_complete"]
    assert not upgrade["violations"], upgrade["violations"]
    assert not baseline["violations"], baseline["violations"]
    assert baseline["throughput"] > 0
    assert ratio >= MIN_UPGRADE_THROUGHPUT_RATIO, ratio

    _merge_output({
        "rolling_upgrade": {
            "upgrade": upgrade,
            "baseline": baseline,
            "throughput_ratio": ratio,
        }
    })
    benchmark.extra_info["throughput_ratio"] = ratio


def _merge_output(section):
    """Merge one figure's rows into BENCH_membership.json (tests may run
    individually, so neither may clobber the other's section)."""
    data = {}
    if OUTPUT_PATH.exists():
        data = json.loads(OUTPUT_PATH.read_text())
    data.update(section)
    OUTPUT_PATH.write_text(json.dumps(data, indent=2, default=str) + "\n")
