"""Figure 9 — ISS-PBFT throughput over time with one crash fault (Blacklist).

Paper result: an epoch-start crash leaves a dip while the faulty leader's
segment waits for its view-change timeout, but other segments keep making
progress and the epoch change is not delayed; an epoch-end crash delays the
epoch change itself, after which ISS recovers with a burst (the paper observes
>170 kreq/s right after recovery).  After the first epoch the crashed node is
blacklisted and throughput returns to the fault-free level.

The per-second series is produced by the observability sampler
(``repro.obs.MetricsSampler`` via ``scenarios.throughput_timeline``); this
benchmark no longer carries any bucket accounting of its own.
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_series, print_banner

from conftest import run_scenario, scaled_duration

RATE = 400.0


def _analyse(timeline):
    values = [v for _, v in timeline]
    if not values:
        return 0.0, 0.0
    return max(values), sum(values) / len(values)


def test_fig9a_epoch_start_crash_timeline(benchmark):
    result = run_scenario(
        benchmark,
        lambda: scenarios.throughput_timeline(
            num_nodes=4, rate=RATE, duration=scaled_duration(30.0), crash_kind="epoch-start"
        ),
        "fig9a",
    )
    print_banner("Figure 9(a): ISS-PBFT throughput over time, epoch-start crash")
    print(format_series("throughput", result["timeline"]))
    peak, mean = _analyse(result["timeline"])
    values = [v for _, v in result["timeline"]]
    # The crash causes an initial stall (some zero-throughput seconds)...
    assert any(v == 0 for v in values[:10])
    # ...followed by recovery: the second half of the run delivers at least
    # the offered rate on average (the backlog is drained).
    second_half = values[len(values) // 2:]
    assert sum(second_half) / len(second_half) > 0.5 * RATE
    assert result["extra"]["nil_committed"] >= 1
    benchmark.extra_info["peak"] = peak


def test_fig9b_epoch_end_crash_timeline(benchmark):
    result = run_scenario(
        benchmark,
        lambda: scenarios.throughput_timeline(
            num_nodes=4, rate=RATE, duration=scaled_duration(30.0), crash_kind="epoch-end"
        ),
        "fig9b",
    )
    print_banner("Figure 9(b): ISS-PBFT throughput over time, epoch-end crash")
    print(format_series("throughput", result["timeline"]))
    values = [v for _, v in result["timeline"]]
    # The epoch change is delayed: there is a stall, then a recovery burst
    # larger than the steady-state rate (catching up the backlog).
    assert any(v == 0 for v in values)
    assert max(values) > 1.2 * RATE
    benchmark.extra_info["peak"] = max(values)
