"""Figure 12 — ISS-PBFT throughput over time with one Byzantine straggler.

Paper result: request delivery progresses only as fast as the slowest
straggler, producing periodic spikes — every time the straggler's batch
finally commits, one more batch per correct leader can be delivered as well
(interleaved batch sequence numbers), so throughput alternates between zero
and bursts at the straggler's period.

The per-second series is produced by the observability sampler
(``repro.obs.MetricsSampler`` via ``scenarios.throughput_timeline``); this
benchmark no longer carries any bucket accounting of its own.
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_series, print_banner

from conftest import run_scenario, scaled_duration

STRAGGLER_DELAY = 2.5


def test_fig12_straggler_timeline(benchmark):
    result = run_scenario(
        benchmark,
        lambda: scenarios.throughput_timeline(
            num_nodes=4,
            rate=400.0,
            duration=scaled_duration(30.0),
            straggler_count=1,
            straggler_delay=STRAGGLER_DELAY,
        ),
        "fig12",
    )
    print_banner("Figure 12: ISS-PBFT throughput over time with one Byzantine straggler")
    print(format_series("throughput", result["timeline"]))
    values = [v for _, v in result["timeline"]]
    busy_seconds = [v for v in values if v > 0]
    idle_seconds = [v for v in values if v == 0]
    # Spiky delivery: bursts separated by idle seconds, roughly at the
    # straggler's proposal period.
    assert len(busy_seconds) >= 3
    assert len(idle_seconds) >= 3
    assert max(values) > 2 * (sum(values) / len(values))
    # The straggler is never suspected (no ⊥ entries in the log).
    assert result["extra"]["nil_committed"] == 0
    benchmark.extra_info["spikes"] = len(busy_seconds)
