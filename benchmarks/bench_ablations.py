"""Ablation benchmarks for the design choices called out in DESIGN.md §6.

Not part of the paper's figures; these quantify, at simulation scale, the
design decisions the paper argues for qualitatively:

* round-robin vs contiguous sequence-number interleaving (the paper claims
  round-robin minimises log gaps and therefore latency),
* epoch length (shorter epochs recover from faults faster but pay more
  epoch-change overhead).
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration


def test_ablation_seqnr_layout(benchmark):
    rows = run_scenario(
        benchmark,
        lambda: scenarios.layout_ablation(num_nodes=4, rate=400.0, duration=scaled_duration(10.0)),
        "ablation-layout",
    )
    print_banner("Ablation: round-robin vs contiguous sequence-number interleaving")
    print(
        format_table(
            ["layout", "throughput (req/s)", "mean latency (s)", "p95 latency (s)"],
            [[r["layout"], f"{r['throughput']:.0f}", f"{r['latency_mean']:.2f}", f"{r['latency_p95']:.2f}"] for r in rows],
        )
    )
    round_robin = next(r for r in rows if r["layout"] == "round-robin")
    contiguous = next(r for r in rows if r["layout"] == "contiguous")
    # The paper's argument: contiguous blocks create long gaps behind slow
    # segments, so round-robin should not be (meaningfully) worse.
    assert round_robin["latency_mean"] <= contiguous["latency_mean"] * 1.25
    benchmark.extra_info["rows"] = rows


def test_ablation_epoch_length(benchmark):
    rows = run_scenario(
        benchmark,
        lambda: scenarios.epoch_length_ablation(
            num_nodes=4, epoch_lengths=(16, 32, 64), rate=400.0, duration=scaled_duration(10.0)
        ),
        "ablation-epoch-length",
    )
    print_banner("Ablation: epoch length")
    print(
        format_table(
            ["epoch length", "throughput (req/s)", "mean latency (s)", "epochs completed"],
            [[r["epoch_length"], f"{r['throughput']:.0f}", f"{r['latency_mean']:.2f}", int(r["epochs_completed"])] for r in rows],
        )
    )
    # Shorter epochs mean more epoch transitions in the same virtual time.
    assert rows[0]["epochs_completed"] > rows[-1]["epochs_completed"]
    # Throughput is within a reasonable band across epoch lengths (no collapse).
    peaks = [r["throughput"] for r in rows]
    assert min(peaks) > 0.5 * max(peaks)
    benchmark.extra_info["rows"] = rows
