"""Client-abuse figure — correct-client throughput/latency under abusive
end users.

The paper's Section 3.7 defences (watermark windows, request signatures,
payload-excluded bucket hashing) target *malicious clients*, but the
original evaluation never attacks them.  This figure closes that gap with
the malicious-client suite from ``repro.sim.client_adversary``: it sweeps
the number of abusive clients for every behaviour (watermark abuse,
duplicate flooding, bucket bias, forged signatures), with wire batching on
and off, and reports how much the *correct* clients' throughput and
latency degrade.

Assertions pin the defence claims, not just the curves: every correct
client's requests complete, delivered prefixes stay identical across all
nodes, each abusive submission class is rejected and counted
(``RunReport.client_abuse``), and per-client node memory stays bounded.

``REPRO_ABUSE_CLIENTS`` raises the maximum abusive-client count of the
sweep (default 2 of 8 clients); ``REPRO_BENCH_SCALE`` scales durations
like every other figure benchmark.
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration


def _abusive_counts():
    return tuple(range(scenarios.abuse_client_count() + 1))


@pytest.mark.parametrize("flush_interval", [0.0, None], ids=["unbatched", "batched"])
def test_client_abuse_sweep(benchmark, flush_interval):
    rows = run_scenario(
        benchmark,
        lambda: scenarios.client_abuse_sweep(
            num_nodes=4,
            num_clients=8,
            rate=400.0,
            duration=scaled_duration(6.0),
            abusive_counts=_abusive_counts(),
            flush_interval=flush_interval,
        ),
        "client-abuse",
    )
    print_banner(
        "Client abuse: correct-client throughput/latency vs abusive clients "
        f"({'batched' if flush_interval is None else 'unbatched'})"
    )
    print(
        format_table(
            [
                "behaviour", "abusive", "throughput (req/s)", "mean lat (s)",
                "p95 lat (s)", "correct done", "rejected", "dups", "safe",
            ],
            [
                [
                    r["behaviour"], r["abusive"], f"{r['throughput']:.0f}",
                    f"{r['latency_mean']:.2f}", f"{r['latency_p95']:.2f}",
                    r["correct_all_complete"], int(r["rejections_total"]),
                    int(r["duplicates_total"]), r["prefixes_identical"],
                ]
                for r in rows
            ],
        )
    )

    for r in rows:
        # The defences, not just the curves: correct clients unharmed...
        assert r["correct_all_complete"], r
        # ...safety across all nodes...
        assert r["prefixes_identical"], r
        # ...and every abusive submission class rejected and counted.
        assert r["abuse_contained"], r
        # Node memory stays bounded: the delivered filter is GC'd below the
        # advanced watermarks instead of holding every delivered id forever.
        assert r["delivered_filter_max"] < r["correct_completed"], r

    baseline = next(r for r in rows if r["abusive"] == 0)
    assert baseline["throughput"] > 0
    benchmark.extra_info["rows"] = rows


def test_watermark_stall(benchmark):
    row = run_scenario(
        benchmark,
        lambda: scenarios.watermark_stall(duration=scaled_duration(6.0)),
        "watermark-stall",
    )
    print_banner("Watermark stall: a gap-leaving client wedges only itself")
    print(
        format_table(
            [
                "abuser low", "stalled", "correct lows advanced",
                "correct done", "ooo max", "GC'd", "safe",
            ],
            [[
                row["abuser_low_watermark"], row["abuser_stalled"],
                row["correct_lows_advanced"], row["correct_all_complete"],
                row["out_of_order_max"], int(row["gc_entries_total"]),
                row["prefixes_identical"],
            ]],
        )
    )
    # The gap pins the abuser inside its window while the rest of the
    # system keeps moving and node memory stays bounded.
    assert row["abuser_stalled"]
    assert row["correct_lows_advanced"]
    assert row["correct_all_complete"]
    assert row["prefixes_identical"]
    assert row["out_of_order_bounded"]
    assert row["gc_entries_total"] > 0
    benchmark.extra_info["rows"] = [row]
