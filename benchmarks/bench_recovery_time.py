"""Recovery-time figure — catch-up cost as a function of downtime.

Wraps :func:`repro.harness.scenarios.recovery_time_over_downtime` (PR 3's
crash→restart→WAL-replay→state-transfer pipeline) the same way the other
figure benchmarks wrap their scenarios, and — like the perf smoke writes
``BENCH_hotpath.json`` — emits the rows to ``BENCH_recovery_time.json`` in
the repository root so the recovery-cost trajectory is tracked across PRs.

Expected shape: the longer a node stays down, the more epochs are ordered
without it, so the bytes it must state-transfer on restart grow with the
downtime while it still always catches up and stays log-identical to its
never-crashed peers.
"""

import json
from pathlib import Path

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration

#: Where the figure's rows are persisted (repository root, like the other
#: BENCH_*.json artefacts).
OUTPUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_recovery_time.json"


def test_recovery_time_over_downtime(benchmark):
    downtimes = tuple(scaled_duration(d) for d in (2.5, 5.0, 7.5))

    rows = run_scenario(
        benchmark,
        lambda: scenarios.recovery_time_over_downtime(
            num_nodes=4,
            rate=400.0,
            downtimes=downtimes,
            crash_time=3.0,
            tail_time=15.0,
        ),
        "recovery-time",
    )
    print_banner("Recovery time over downtime (ISS-PBFT, 4 nodes)")
    print(
        format_table(
            [
                "downtime (s)", "time to caught up (s)", "WAL replayed",
                "snapshot entries", "transfer bytes", "transfer entries", "safe",
            ],
            [
                [
                    f"{r['downtime']:.1f}", f"{r['time_to_caught_up']:.2f}",
                    int(r["wal_entries_replayed"]), int(r["snapshot_entries"]),
                    int(r["state_transfer_bytes"]), int(r["state_transfer_entries"]),
                    r["prefix_matches"],
                ]
                for r in rows
            ],
        )
    )

    for r in rows:
        # Every restart must catch up and agree with its peers.
        assert r["caught_up"], r
        assert r["prefix_matches"], r
    # More downtime ⇒ at least as much state to transfer on the way back.
    transfer = [r["state_transfer_entries"] for r in rows]
    assert transfer == sorted(transfer)
    assert transfer[-1] > 0

    OUTPUT_PATH.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
    benchmark.extra_info["rows"] = rows
