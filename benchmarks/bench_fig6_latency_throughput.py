"""Figure 6 — end-to-end latency over throughput for increasing load.

Paper result (per protocol, 4–128 nodes): latency stays low until the offered
load approaches the saturation throughput, then rises sharply; the
single-leader variants saturate at much lower throughput than their ISS
counterparts as the node count grows.
"""

import pytest

from repro.core.config import PROTOCOL_PBFT
from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration, scaled_nodes

LOADS = (200.0, 600.0, 1200.0, 1800.0)


def _print(rows, title):
    print_banner(title)
    print(
        format_table(
            ["system", "nodes", "offered (req/s)", "throughput (req/s)", "mean latency (s)", "p95 latency (s)"],
            [
                [r["system"], r["nodes"], f"{r['offered_load']:.0f}", f"{r['throughput']:.0f}",
                 f"{r['latency_mean']:.2f}", f"{r['latency_p95']:.2f}"]
                for r in rows
            ],
        )
    )


def test_fig6_iss_pbft_latency_vs_throughput(benchmark):
    node_counts = scaled_nodes((4, 8))

    def scenario():
        rows = []
        for n in node_counts:
            rows.extend(
                scenarios.latency_throughput_sweep(
                    PROTOCOL_PBFT, n, LOADS, duration=scaled_duration(4.0)
                )
            )
        return rows

    rows = run_scenario(benchmark, scenario, "fig6-iss-pbft")
    _print(rows, "Figure 6(a): ISS-PBFT latency over throughput")
    for n in node_counts:
        curve = [r for r in rows if r["nodes"] == n]
        # Throughput increases with offered load until saturation...
        assert curve[-1]["throughput"] >= curve[0]["throughput"]
        # ...and latency under light load is lower than at the heaviest load.
        assert curve[0]["latency_mean"] <= curve[-1]["latency_mean"] * 1.5


def test_fig6_single_leader_pbft_saturates_earlier(benchmark):
    n = scaled_nodes((8,))[0]

    def scenario():
        iss_rows = scenarios.latency_throughput_sweep(PROTOCOL_PBFT, n, LOADS, duration=scaled_duration(4.0))
        single_rows = scenarios.latency_throughput_sweep(
            PROTOCOL_PBFT, n, LOADS, duration=scaled_duration(4.0), single_leader=True
        )
        return {"iss": iss_rows, "single": single_rows}

    result = run_scenario(benchmark, scenario, "fig6-single-vs-iss")
    _print(result["iss"] + result["single"], f"Figure 6: ISS vs single-leader PBFT at n={n}")
    iss_peak = max(r["throughput"] for r in result["iss"])
    single_peak = max(r["throughput"] for r in result["single"])
    assert single_peak < iss_peak
    # At the highest offered load the single leader is saturated: its latency
    # exceeds the ISS latency at the same offered load.
    assert result["single"][-1]["latency_mean"] > result["iss"][-1]["latency_mean"]
