"""Partition-heal figure — reconvergence cost vs partition duration, plus
the rest of the network-chaos battery.

The paper's evaluation crashes nodes but never partitions the network;
this figure closes that gap with the chaos subsystem from
``repro.sim.chaos``.  The headline sweep isolates one node for longer and
longer windows (``REPRO_PARTITION_DURATIONS``, default 2/5/8 s) and
reports how time-to-reconverge, view-change count and client-retry volume
grow with the outage; companion tests cover the bridge topology (no side
has a quorum), a one-way link block, the flapping-link sweep and the
retry-storm stress.

Assertions pin the partition-tolerance claims, not just the curves: every
client's requests complete through retry/backoff, delivered prefixes stay
identical across correct nodes, every partition record reconverges after
its heal, and drops are attributed to their cause per payload.

On success the duration sweep (plus the bridge row) is written to
``BENCH_partition_heal.json`` in the repository root.  The same artefact
is also refreshed by the CI gate ``python -m repro.partition_smoke`` with
its pinned single-scenario figures — whichever ran last wins; both stamp a
``source`` key so the trajectory stays attributable.

``REPRO_PARTITION_DURATIONS`` and ``REPRO_FLAP_PERIODS`` shape the sweeps;
``REPRO_BENCH_SCALE`` scales durations like every other figure benchmark.
"""

import json
from pathlib import Path

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration

BENCH_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_partition_heal.json"


def _assert_chaos_row(row):
    """The claims every chaos scenario must uphold (see module docstring)."""
    assert row["all_complete"], row
    assert row["prefixes_identical"], row
    assert row["reconverged"], row


def test_partition_heal_sweep(benchmark):
    durations = scenarios.partition_durations()
    rows = run_scenario(
        benchmark,
        lambda: [
            scenarios.partition_minority(
                duration=scaled_duration(15.0), partition_duration=d
            )
            for d in durations
        ],
        "partition-heal",
    )
    bridge = scenarios.partition_bridge(duration=scaled_duration(15.0))
    print_banner("Partition heal: reconvergence cost vs partition duration")
    print(
        format_table(
            [
                "scenario", "split (s)", "reconverge (s)", "view changes",
                "retries", "throughput (req/s)", "done", "safe",
            ],
            [
                [
                    r["scenario"], f"{r.get('partition_duration', 6.0):.0f}",
                    f"{r['time_to_reconverge']:.2f}",
                    r["view_changes_during"], int(r["client_retries"]),
                    f"{r['throughput']:.0f}", r["all_complete"],
                    r["prefixes_identical"],
                ]
                for r in rows + [bridge]
            ],
        )
    )

    for row in rows + [bridge]:
        _assert_chaos_row(row)
        assert row["time_to_reconverge"] >= 0.0, row
        assert row["drops_by_cause"]["partition"] > 0, row
    benchmark.extra_info["rows"] = rows + [bridge]

    # Only figures that passed every assertion may refresh the tracked
    # artefact (same rule as the partition-smoke CI gate).
    BENCH_OUTPUT.write_text(
        json.dumps(
            {
                "source": "bench_partition_heal",
                "duration_sweep": rows,
                "bridge": bridge,
            },
            indent=2,
            default=str,
        )
        + "\n"
    )


def test_asymmetric_link(benchmark):
    row = run_scenario(
        benchmark,
        lambda: scenarios.asymmetric_link(duration=scaled_duration(12.0)),
        "asymmetric-link",
    )
    print_banner("Asymmetric link: one-way block absorbed without recovery")
    # A one-way block leaves a full quorum; protocol redundancy absorbs it.
    _assert_chaos_row(row)
    assert row["drops_by_cause"]["link-fault"] > 0, row
    benchmark.extra_info["rows"] = [row]


def test_link_flap_sweep(benchmark):
    rows = run_scenario(
        benchmark,
        lambda: scenarios.link_flap_sweep(duration=scaled_duration(12.0)),
        "link-flap",
    )
    print_banner("Link flapping: reliable transport rides out the flaps")
    print(
        format_table(
            ["period (s)", "throughput (req/s)", "drops", "done", "safe"],
            [
                [
                    f"{r['flap_period']:.1f}", f"{r['throughput']:.0f}",
                    r["drops_by_cause"]["link-fault"], r["all_complete"],
                    r["prefixes_identical"],
                ]
                for r in rows
            ],
        )
    )
    for row in rows:
        _assert_chaos_row(row)
        assert row["drops_by_cause"]["link-fault"] > 0, row
    benchmark.extra_info["rows"] = rows


def test_partition_heal_retry_storm(benchmark):
    row = run_scenario(
        benchmark,
        lambda: scenarios.partition_heal_retry_storm(
            duration=scaled_duration(15.0)
        ),
        "retry-storm",
    )
    print_banner("Retry storm: backoff bounds the post-heal burst")
    _assert_chaos_row(row)
    # The hot retry loop must actually retry — and backoff must keep the
    # storm bounded (no more than a handful of retries per request).
    assert row["client_retries"] > 0, row
    assert row["client_retries"] < 10 * row["submitted"], row
    benchmark.extra_info["rows"] = [row]
