"""Figure 11 — ISS-PBFT latency/throughput with Byzantine stragglers.

Paper result: with 1 straggler ISS-PBFT drops to ~15% of its maximum
throughput, with 10 stragglers to ~10% (still >7.9 kreq/s at 32 nodes); mean
latency before saturation grows 14x–29x.  The shape reproduced here: each
additional straggler reduces throughput and inflates latency, with the first
straggler causing the dominant drop.
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner

from conftest import run_scenario, scaled_duration


def test_fig11_straggler_sweep(benchmark):
    rows = run_scenario(
        benchmark,
        lambda: scenarios.straggler_sweep(
            num_nodes=7,
            straggler_counts=(0, 1, 2),
            rate=400.0,
            duration=scaled_duration(25.0),
            straggler_delay=2.5,
        ),
        "fig11",
    )
    print_banner("Figure 11: ISS-PBFT under Byzantine stragglers (Blacklist)")
    print(
        format_table(
            ["stragglers", "throughput (req/s)", "mean latency (s)", "p95 latency (s)"],
            [
                [r["stragglers"], f"{r['throughput']:.0f}", f"{r['latency_mean']:.2f}", f"{r['latency_p95']:.2f}"]
                for r in rows
            ],
        )
    )
    clean = rows[0]
    one = rows[1]
    two = rows[2]
    # One straggler slashes throughput to a fraction of the maximum (the paper
    # reports ~15% of max; the scaled-down deployment has more spare epoch
    # capacity relative to the offered load, so the drop is milder but the
    # direction and the latency blow-up are preserved)...
    assert one["throughput"] < 0.75 * clean["throughput"]
    # ...but the system keeps delivering (paper: 10-15% of max, still kreq/s).
    assert one["throughput"] > 0
    assert two["throughput"] > 0
    # Latency inflates by an order of magnitude.
    assert one["latency_mean"] > 4 * clean["latency_mean"]
    # More stragglers never help.
    assert two["throughput"] <= one["throughput"] * 1.1
    benchmark.extra_info["rows"] = rows
