"""Figure 13 (extension) — ISS under *active* Byzantine leaders.

The paper claims the system tolerates actively malicious leaders: bucket
rotation defeats request censorship (Section 3.2) and the follower
acceptance rules plus leader-selection policies contain equivocating
leaders (Sections 4.2, 3.4).  The original evaluation only exercises
passive faults (crashes, stragglers); this figure closes that gap with the
adversary suite from ``repro.sim.adversary``:

* **equivocation** — conflicting proposals split the vote, the slots stall
  into ``⊥``, the Blacklist policy evicts the adversary, and correct nodes
  *detect* the attack from f+1 conflicting prepare votes;
* **censorship** — a leader silently drops a bucket set; rotation hands
  the buckets to honest leaders, so the censored traffic completes with a
  bounded latency penalty instead of being lost.

Assertions pin the safety property (identical delivered prefixes at all
correct nodes), eviction under Blacklist, positive detection counters and
censored-traffic completion — the claims, not just the curves.
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner
from repro.sim.faults import BYZ_CENSOR, BYZ_EQUIVOCATE

from conftest import run_scenario, scaled_duration


def test_fig13_byzantine_leader_sweep(benchmark):
    rows = run_scenario(
        benchmark,
        lambda: scenarios.byzantine_leader_sweep(
            num_nodes=4,
            rate=400.0,
            duration=scaled_duration(10.0),
        ),
        "fig13",
    )
    print_banner("Figure 13: throughput/latency under active Byzantine leaders")
    print(
        format_table(
            [
                "protocol", "behaviour", "adv", "throughput (req/s)",
                "mean lat (s)", "p95 lat (s)", "equiv detected", "evicted", "safe",
            ],
            [
                [
                    r["protocol"], r["behaviour"], r["adversaries"],
                    f"{r['throughput']:.0f}", f"{r['latency_mean']:.2f}",
                    f"{r['latency_p95']:.2f}", r["equivocations_detected"],
                    r["adversaries_evicted"], r["prefixes_identical"],
                ]
                for r in rows
            ],
        )
    )

    for r in rows:
        # Safety under attack: all correct nodes agree on every shared position.
        assert r["prefixes_identical"], r
        # Liveness under attack: the system keeps delivering.
        assert r["throughput"] > 0, r

    def row(protocol, behaviour, adversaries):
        return next(
            r
            for r in rows
            if r["protocol"] == protocol
            and r["behaviour"] == behaviour
            and r["adversaries"] == adversaries
        )

    for protocol in ("pbft", "hotstuff"):
        attacked = row(protocol, BYZ_EQUIVOCATE, 1)
        # Conflicting proposals stall their slots into ⊥ and the Blacklist
        # policy rotates the equivocator out of the leaderset.
        assert attacked["nil_committed"] > 0
        assert attacked["adversaries_evicted"]
    # PBFT correct nodes prove the equivocation from conflicting votes.
    assert row("pbft", BYZ_EQUIVOCATE, 1)["equivocations_detected"] > 0
    benchmark.extra_info["rows"] = rows


def test_fig13_censorship_rotation(benchmark):
    row = run_scenario(
        benchmark,
        lambda: scenarios.censorship_rotation(
            num_nodes=4,
            rate=400.0,
            duration=scaled_duration(8.0),
        ),
        "fig13-censorship",
    )
    print_banner("Figure 13b: bucket rotation vs a censoring leader")
    print(
        format_table(
            ["censored submitted", "completed", "ratio", "mean lat (s)", "penalty ×"],
            [[
                row["censored_submitted"], row["censored_completed"],
                f"{row['censored_completion_ratio']:.3f}",
                f"{row['censored_latency_mean']:.2f}",
                f"{row['latency_penalty']:.2f}",
            ]],
        )
    )
    assert row["prefixes_identical"]
    assert row["censored_submitted"] > 0
    # Bucket rotation delivers the censored traffic despite the adversary.
    assert row["censored_completion_ratio"] >= 0.95
    benchmark.extra_info["rows"] = [row]
