"""Figure 5 — peak throughput vs number of nodes.

Paper result: at 128 nodes ISS improves peak throughput of PBFT, HotStuff and
Raft by 37x, 56x and 55x respectively; single-leader throughput decays
roughly as 1/n while ISS stays flat or grows; ISS-PBFT also outperforms
Mir-BFT slightly.

This benchmark reproduces the *shape* at simulation scale (see
EXPERIMENTS.md): single-leader peak throughput falls as nodes are added, the
ISS variants sustain their throughput, and the ISS/single-leader improvement
factor grows with the node count.

Run as a script, this file additionally sweeps the two simulator engines
(single-queue vs sharded, see ``repro.sim.sharded``) over the Figure-5 node
counts and writes ``BENCH_fig5.json``::

    PYTHONPATH=src python benchmarks/bench_fig5_scalability.py [--smoke]

The sweep doubles as a differential check: both engines must execute the
exact same number of events and complete the same number of requests at
every node count, or the sweep fails.
"""

import argparse
import gc
import json
import os
import sys
import time

import pytest

from repro.core.config import PROTOCOL_HOTSTUFF, PROTOCOL_PBFT, PROTOCOL_RAFT
from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner, speedup

from conftest import run_scenario, scaled_duration, scaled_nodes

#: Offered loads swept per point; the peak before saturation is reported.
OFFERED_LOADS = (800.0, 1600.0)


def _print_rows(rows):
    print_banner("Figure 5: peak throughput (req/s) vs number of nodes")
    print(
        format_table(
            ["system", "protocol", "nodes", "peak tput (req/s)", "offered (req/s)", "latency at peak (s)"],
            [
                [r["system"], r["protocol"], r["nodes"], f"{r['peak_throughput']:.0f}",
                 f"{r['at_offered_load']:.0f}", f"{r['latency_at_peak']:.2f}"]
                for r in rows
            ],
        )
    )


def _improvement(rows, protocol, nodes):
    iss = next(r for r in rows if r["system"] == "iss" and r["protocol"] == protocol and r["nodes"] == nodes)
    single = next(r for r in rows if r["system"] == "single" and r["protocol"] == protocol and r["nodes"] == nodes)
    return speedup(iss["peak_throughput"], single["peak_throughput"])


def test_fig5_pbft_scalability(benchmark):
    nodes = scaled_nodes((4, 8, 16))
    rows = run_scenario(
        benchmark,
        lambda: scenarios.scalability_sweep(
            node_counts=nodes,
            protocols=(PROTOCOL_PBFT,),
            offered_loads=OFFERED_LOADS,
            duration=scaled_duration(5.0),
            include_mirbft=True,
        ),
        "fig5-pbft",
    )
    _print_rows(rows)
    largest = max(nodes)
    smallest = min(nodes)
    factor_large = _improvement(rows, PROTOCOL_PBFT, largest)
    factor_small = _improvement(rows, PROTOCOL_PBFT, smallest)
    print(f"\nISS-PBFT / PBFT improvement: {factor_small:.1f}x at n={smallest}, "
          f"{factor_large:.1f}x at n={largest} (paper: 37x at n=128)")
    benchmark.extra_info["improvement_at_largest_n"] = factor_large

    singles = {r["nodes"]: r["peak_throughput"] for r in rows if r["system"] == "single"}
    iss = {r["nodes"]: r["peak_throughput"] for r in rows if r["system"] == "iss"}
    # Shape assertions: the single leader decays with n, ISS does not, and the
    # improvement factor grows with the node count.
    assert singles[largest] < singles[smallest]
    assert iss[largest] > 0.7 * iss[smallest]
    assert factor_large > factor_small
    assert factor_large > 1.5


def test_fig5_hotstuff_scalability(benchmark):
    nodes = scaled_nodes((4, 8))
    rows = run_scenario(
        benchmark,
        lambda: scenarios.scalability_sweep(
            node_counts=nodes,
            protocols=(PROTOCOL_HOTSTUFF,),
            offered_loads=OFFERED_LOADS,
            duration=scaled_duration(5.0),
            include_mirbft=False,
        ),
        "fig5-hotstuff",
    )
    _print_rows(rows)
    largest = max(nodes)
    factor = _improvement(rows, PROTOCOL_HOTSTUFF, largest)
    print(f"\nISS-HotStuff / HotStuff improvement at n={largest}: {factor:.1f}x (paper: 56x at n=128)")
    assert factor > 1.0


def test_fig5_raft_scalability(benchmark):
    nodes = scaled_nodes((4, 8))
    rows = run_scenario(
        benchmark,
        lambda: scenarios.scalability_sweep(
            node_counts=nodes,
            protocols=(PROTOCOL_RAFT,),
            offered_loads=OFFERED_LOADS,
            duration=scaled_duration(5.0),
            include_mirbft=False,
        ),
        "fig5-raft",
    )
    _print_rows(rows)
    largest = max(nodes)
    factor = _improvement(rows, PROTOCOL_RAFT, largest)
    print(f"\nISS-Raft / Raft improvement at n={largest}: {factor:.1f}x (paper: 55x at n=128)")
    assert factor > 1.0


# ----------------------------------------------------------------------------
# Engine sweep CLI: single-queue vs sharded simulator over Fig. 5 node counts.
# ----------------------------------------------------------------------------

#: Full Figure-5 sweep (paper scale); REPRO_FIG5_NODES overrides.
DEFAULT_NODE_COUNTS = (8, 16, 32, 64, 128)
#: CI smoke subset (kept small enough for the perf-smoke gate).
SMOKE_NODE_COUNTS = (8, 16)
#: Timed repetitions per engine per node count (min is reported).
DEFAULT_REPS = 3

OUTPUT_PATH = "BENCH_fig5.json"


def _engine_deployment(engine, num_nodes, duration, rate):
    """One Fig. 5 datapoint: recovery-armed ISS-PBFT on the 8-region WAN."""
    from repro.core.config import SimConfig
    from repro.harness.runner import Deployment

    return Deployment(
        config=scenarios.chaos_config("pbft", num_nodes, random_seed=1),
        network_config=scenarios.wan_regions(min(8, num_nodes)),
        workload=scenarios._workload(rate=rate, duration=duration, clients=8),
        sim_config=SimConfig(engine=engine),
        recovery_poll=0.25,
        probe_stagger=0.5,
    )


def _timed_run(engine, num_nodes, duration, rate):
    """Build and run one deployment; returns (wall_seconds, figures).

    GC is disabled around the timed region (the ``timeit`` convention):
    collector pauses otherwise dominate engine-level differences.
    """
    deployment = _engine_deployment(engine, num_nodes, duration, rate)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    try:
        result = deployment.run()
    finally:
        if gc_was_enabled:
            gc.enable()
    wall = time.perf_counter() - start
    return wall, {
        "events": deployment.sim.events_executed,
        "completed": result.report.completed,
        "virtual_throughput_rps": result.report.completed / duration,
    }


def sweep_engines(node_counts, reps=DEFAULT_REPS, duration=3.0, rate=300.0):
    """Time both engines at each node count; alternate run order per rep.

    Returns one row per node count with per-engine wall time (min over
    reps), events/s, and the virtual (simulated) request throughput.
    Raises ``RuntimeError`` if the engines diverge on any counted figure —
    the sweep is also a cross-engine differential check.
    """
    rows = []
    for num_nodes in node_counts:
        walls = {"single": [], "sharded": []}
        figures = {}
        for rep in range(reps):
            order = ("single", "sharded") if rep % 2 == 0 else ("sharded", "single")
            for engine in order:
                wall, figs = _timed_run(engine, num_nodes, duration, rate)
                walls[engine].append(wall)
                if engine in figures and figures[engine] != figs:
                    raise RuntimeError(
                        f"n={num_nodes}: {engine} engine not deterministic "
                        f"across reps: {figures[engine]} vs {figs}"
                    )
                figures[engine] = figs
        if figures["single"] != figures["sharded"]:
            raise RuntimeError(
                f"n={num_nodes}: engines diverged: single={figures['single']} "
                f"sharded={figures['sharded']}"
            )
        events = figures["single"]["events"]
        row = {
            "nodes": num_nodes,
            "events": events,
            "virtual_throughput_rps": figures["single"]["virtual_throughput_rps"],
        }
        for engine in ("single", "sharded"):
            best = min(walls[engine])
            row[engine] = {
                "wall_seconds": round(best, 3),
                "events_per_sec": round(events / best, 1),
                "all_wall_seconds": [round(w, 3) for w in walls[engine]],
            }
        row["sharded_speedup"] = round(
            row["single"]["wall_seconds"] / row["sharded"]["wall_seconds"], 3
        )
        rows.append(row)
        print(
            f"n={num_nodes:4d}  events={events:9d}  "
            f"single={row['single']['events_per_sec']:9.0f} ev/s  "
            f"sharded={row['sharded']['events_per_sec']:9.0f} ev/s  "
            f"speedup={row['sharded_speedup']:.3f}x"
        )
    return rows


def _node_counts_from_env(default):
    """Parse the REPRO_FIG5_NODES override ("8,16,64") if set."""
    raw = os.environ.get("REPRO_FIG5_NODES", "").strip()
    if not raw:
        return tuple(default)
    return tuple(int(part) for part in raw.split(",") if part.strip())


def main(argv=None):
    """CLI entry point: engine sweep over Fig. 5 node counts → BENCH_fig5.json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI subset: nodes {SMOKE_NODE_COUNTS}, one rep, short runs",
    )
    parser.add_argument("--reps", type=int, default=None, help="timed reps per engine")
    parser.add_argument(
        "--output", default=None,
        help=f"JSON output path (default {OUTPUT_PATH}, or a separate "
        "smoke file under --smoke so CI never clobbers the full sweep)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = "BENCH_fig5_smoke.json" if args.smoke else OUTPUT_PATH

    node_counts = _node_counts_from_env(SMOKE_NODE_COUNTS if args.smoke else DEFAULT_NODE_COUNTS)
    reps = args.reps if args.reps is not None else (1 if args.smoke else DEFAULT_REPS)
    duration = 2.0 if args.smoke else 3.0
    print_banner(
        f"Fig. 5 engine sweep: nodes {node_counts}, {reps} rep(s) per engine"
    )
    started = time.time()
    rows = sweep_engines(node_counts, reps=reps, duration=duration)
    payload = {
        "benchmark": "fig5-engine-sweep",
        "scenario": {
            "protocol": "pbft",
            "network": "wan_regions (8-region geo-latency matrix)",
            "workload_rps": 300.0,
            "duration_virtual_s": duration,
            "recovery_armed": True,
            "seed": 1,
        },
        "methodology": (
            "per node count: both engines timed in alternating order, "
            f"{reps} rep(s) each, GC disabled during timed regions, min wall "
            "reported; engines must agree on events and completed requests"
        ),
        "wall_clock_total_s": round(time.time() - started, 1),
        "rows": rows,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
