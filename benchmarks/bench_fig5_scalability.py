"""Figure 5 — peak throughput vs number of nodes.

Paper result: at 128 nodes ISS improves peak throughput of PBFT, HotStuff and
Raft by 37x, 56x and 55x respectively; single-leader throughput decays
roughly as 1/n while ISS stays flat or grows; ISS-PBFT also outperforms
Mir-BFT slightly.

This benchmark reproduces the *shape* at simulation scale (see
EXPERIMENTS.md): single-leader peak throughput falls as nodes are added, the
ISS variants sustain their throughput, and the ISS/single-leader improvement
factor grows with the node count.
"""

import pytest

from repro.core.config import PROTOCOL_HOTSTUFF, PROTOCOL_PBFT, PROTOCOL_RAFT
from repro.harness import scenarios
from repro.metrics.report import format_table, print_banner, speedup

from conftest import run_scenario, scaled_duration, scaled_nodes

#: Offered loads swept per point; the peak before saturation is reported.
OFFERED_LOADS = (800.0, 1600.0)


def _print_rows(rows):
    print_banner("Figure 5: peak throughput (req/s) vs number of nodes")
    print(
        format_table(
            ["system", "protocol", "nodes", "peak tput (req/s)", "offered (req/s)", "latency at peak (s)"],
            [
                [r["system"], r["protocol"], r["nodes"], f"{r['peak_throughput']:.0f}",
                 f"{r['at_offered_load']:.0f}", f"{r['latency_at_peak']:.2f}"]
                for r in rows
            ],
        )
    )


def _improvement(rows, protocol, nodes):
    iss = next(r for r in rows if r["system"] == "iss" and r["protocol"] == protocol and r["nodes"] == nodes)
    single = next(r for r in rows if r["system"] == "single" and r["protocol"] == protocol and r["nodes"] == nodes)
    return speedup(iss["peak_throughput"], single["peak_throughput"])


def test_fig5_pbft_scalability(benchmark):
    nodes = scaled_nodes((4, 8, 16))
    rows = run_scenario(
        benchmark,
        lambda: scenarios.scalability_sweep(
            node_counts=nodes,
            protocols=(PROTOCOL_PBFT,),
            offered_loads=OFFERED_LOADS,
            duration=scaled_duration(5.0),
            include_mirbft=True,
        ),
        "fig5-pbft",
    )
    _print_rows(rows)
    largest = max(nodes)
    smallest = min(nodes)
    factor_large = _improvement(rows, PROTOCOL_PBFT, largest)
    factor_small = _improvement(rows, PROTOCOL_PBFT, smallest)
    print(f"\nISS-PBFT / PBFT improvement: {factor_small:.1f}x at n={smallest}, "
          f"{factor_large:.1f}x at n={largest} (paper: 37x at n=128)")
    benchmark.extra_info["improvement_at_largest_n"] = factor_large

    singles = {r["nodes"]: r["peak_throughput"] for r in rows if r["system"] == "single"}
    iss = {r["nodes"]: r["peak_throughput"] for r in rows if r["system"] == "iss"}
    # Shape assertions: the single leader decays with n, ISS does not, and the
    # improvement factor grows with the node count.
    assert singles[largest] < singles[smallest]
    assert iss[largest] > 0.7 * iss[smallest]
    assert factor_large > factor_small
    assert factor_large > 1.5


def test_fig5_hotstuff_scalability(benchmark):
    nodes = scaled_nodes((4, 8))
    rows = run_scenario(
        benchmark,
        lambda: scenarios.scalability_sweep(
            node_counts=nodes,
            protocols=(PROTOCOL_HOTSTUFF,),
            offered_loads=OFFERED_LOADS,
            duration=scaled_duration(5.0),
            include_mirbft=False,
        ),
        "fig5-hotstuff",
    )
    _print_rows(rows)
    largest = max(nodes)
    factor = _improvement(rows, PROTOCOL_HOTSTUFF, largest)
    print(f"\nISS-HotStuff / HotStuff improvement at n={largest}: {factor:.1f}x (paper: 56x at n=128)")
    assert factor > 1.0


def test_fig5_raft_scalability(benchmark):
    nodes = scaled_nodes((4, 8))
    rows = run_scenario(
        benchmark,
        lambda: scenarios.scalability_sweep(
            node_counts=nodes,
            protocols=(PROTOCOL_RAFT,),
            offered_loads=OFFERED_LOADS,
            duration=scaled_duration(5.0),
            include_mirbft=False,
        ),
        "fig5-raft",
    )
    _print_rows(rows)
    largest = max(nodes)
    factor = _improvement(rows, PROTOCOL_RAFT, largest)
    print(f"\nISS-Raft / Raft improvement at n={largest}: {factor:.1f}x (paper: 55x at n=128)")
    assert factor > 1.0
