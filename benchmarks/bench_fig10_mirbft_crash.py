"""Figure 10 — Mir-BFT throughput over time with one epoch-start crash.

Paper result: unlike ISS, Mir-BFT stops processing during every epoch change,
and every time the crashed node's turn as *epoch primary* comes up the epoch
change times out — so periods of zero throughput repeat periodically for the
whole run, whereas ISS only pays once and then permanently removes the faulty
leader.
"""

import pytest

from repro.harness import scenarios
from repro.metrics.report import format_series, print_banner

from conftest import run_scenario, scaled_duration

RATE = 400.0


def _stall_periods(timeline, threshold=1.0):
    """Number of separate multi-second stretches with (near-)zero throughput."""
    stalls = 0
    in_stall = False
    run_length = 0
    for _, value in timeline:
        if value <= threshold:
            run_length += 1
            if run_length >= 2 and not in_stall:
                stalls += 1
                in_stall = True
        else:
            run_length = 0
            in_stall = False
    return stalls


def test_fig10_mirbft_recurring_stalls(benchmark):
    duration = scaled_duration(45.0)

    def scenario():
        mir = scenarios.throughput_timeline(
            num_nodes=4, rate=RATE, duration=duration, crash_kind="epoch-start", mirbft=True
        )
        iss = scenarios.throughput_timeline(
            num_nodes=4, rate=RATE, duration=duration, crash_kind="epoch-start", mirbft=False
        )
        return {"mirbft": mir, "iss": iss}

    result = run_scenario(benchmark, scenario, "fig10")
    print_banner("Figure 10: Mir-BFT vs ISS throughput over time, one epoch-start crash")
    print(format_series("mirbft", result["mirbft"]["timeline"]))
    print(format_series("iss    ", result["iss"]["timeline"]))

    mir_stalls = _stall_periods(result["mirbft"]["timeline"])
    iss_stalls = _stall_periods(result["iss"]["timeline"])
    print(f"\nstall periods: mirbft={mir_stalls}, iss={iss_stalls}")
    # Mir-BFT keeps stalling (ungraceful epoch changes recur); ISS stalls at
    # most around the initial fault.
    assert mir_stalls > iss_stalls
    # Mir-BFT's average latency is worse than ISS's under the same fault.
    assert result["mirbft"]["latency_mean"] > result["iss"]["latency_mean"]
    benchmark.extra_info["mir_stalls"] = mir_stalls
    benchmark.extra_info["iss_stalls"] = iss_stalls
