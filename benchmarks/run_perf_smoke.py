#!/usr/bin/env python
"""CI entry point: perf smoke + crash-recovery smoke + docs check.

Runs, in order:

* ``python -m repro.perf_smoke`` — profiling scenario, unbatched and
  batched (see that module and PERF.md for the output format and
  regression semantics),
* ``python -m repro.recovery_smoke`` — seeded crash→restart scenario;
  the restarted node must catch up, stay log-identical to its peers, and
  replay deterministically against the recovery golden trace,
* ``python -m repro.byzantine_smoke`` — seeded equivocation scenario;
  correct nodes must stay prefix-identical, detect the attack, evict the
  adversary, and replay deterministically against the Byzantine golden
  trace,
* ``python -m repro.client_abuse_smoke`` — seeded malicious-client
  scenario; correct clients must complete, every abusive submission must
  be rejected and counted, and the run must replay deterministically
  against the client-abuse golden trace (writes
  ``BENCH_client_abuse.json``),
* ``python -m repro.partition_smoke`` — seeded partition scenario
  (minority node cut off behind a lossy link); correct clients must
  complete through retry/backoff, nodes must stay prefix-identical, the
  laggard must reconverge via state transfer at heal, and the run must
  replay deterministically against the partition golden trace (writes
  ``BENCH_partition_heal.json``),
* ``python -m repro.membership_smoke`` — seeded reconfiguration
  scenario (a replica added and another removed via ConfigTxs ordered in
  the log); both changes must activate at epoch boundaries, the joiner
  must catch up via state transfer, every client must complete, and the
  run must replay deterministically against the membership golden trace,
* ``python -m repro.fuzz_smoke`` (reduced count) — seeded random
  scenarios run on both simulator engines; safety invariants must hold
  and the engines must stay bit-identical,
* ``python -m repro.live_smoke`` — a **real** 4-node localhost cluster
  (one OS process per replica, TCP, fsync'd storage) driven with KV
  traffic through one ``kill -9`` + restart; every operation must
  complete, the durable logs must agree, the victim must catch up, and
  the run's deterministic shape must match the live golden trace,
* ``python -m repro.obs_smoke`` — the profiling scenario untraced vs
  fully traced; tracing must not perturb the schedule, every completed
  request must close a valid span chain, the artifacts must round-trip
  through the exporters, and enabled-mode overhead must stay under 10%
  (writes ``BENCH_obs_overhead.json``),
* ``benchmarks/bench_fig5_scalability.py --smoke`` — the Fig. 5 engine
  sweep at small node counts; the two engines must agree on every
  counted figure (writes ``BENCH_fig5.json``),
* ``python -m repro.doccheck`` — docstring audit + README and
  docs/SCENARIOS.md code-block execution.

The exit status is non-zero when *any* gate fails, so CI catches perf,
recovery, adversary-robustness, partition-tolerance and documentation
regressions in one step.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_smoke.py [--update-baseline]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.byzantine_smoke import main as byzantine_main  # noqa: E402
from repro.client_abuse_smoke import main as client_abuse_main  # noqa: E402
from repro.doccheck import main as doccheck_main  # noqa: E402
from repro.fuzz_smoke import main as fuzz_main  # noqa: E402
from repro.live_smoke import main as live_main  # noqa: E402
from repro.obs_smoke import main as obs_main  # noqa: E402
from repro.membership_smoke import main as membership_main  # noqa: E402
from repro.partition_smoke import main as partition_main  # noqa: E402
from repro.perf_smoke import main as perf_main  # noqa: E402
from repro.recovery_smoke import main as recovery_main  # noqa: E402

from bench_fig5_scalability import main as fig5_main  # noqa: E402

if __name__ == "__main__":
    perf_status = perf_main()
    recovery_status = recovery_main([])
    byzantine_status = byzantine_main([])
    client_abuse_status = client_abuse_main([])
    partition_status = partition_main([])
    membership_status = membership_main([])
    fuzz_status = fuzz_main(["--count", "6"])
    live_status = live_main([])
    obs_status = obs_main([])
    fig5_status = fig5_main(["--smoke"])
    doc_status = doccheck_main([])
    sys.exit(
        perf_status
        or recovery_status
        or byzantine_status
        or client_abuse_status
        or partition_status
        or membership_status
        or fuzz_status
        or live_status
        or obs_status
        or fig5_status
        or doc_status
    )
