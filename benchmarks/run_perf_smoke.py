#!/usr/bin/env python
"""CI entry point for the hot-path perf smoke test.

Equivalent to ``python -m repro.perf_smoke``; see that module (and PERF.md)
for the scenario, the output format and the regression-check semantics.

Usage::

    PYTHONPATH=src python benchmarks/run_perf_smoke.py [--update-baseline]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf_smoke import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
