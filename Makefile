# Convenience targets for the ISS reproduction.  Everything assumes the
# in-repo layout (sources under src/, no install needed).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test docs-check perf-smoke recovery-smoke byzantine-smoke client-abuse-smoke partition-smoke membership-smoke fuzz-smoke live-smoke obs-smoke fig5-smoke bench

# Tier-1 test suite (the CI gate; see ROADMAP.md).
test:
	$(PYTHON) -m pytest -x -q

# Docstring audit + README code-block execution (see repro.doccheck).
docs-check:
	$(PYTHON) -m repro.doccheck

# Profiling-scenario smoke run incl. the batched-vote scenario and the
# docs check; writes BENCH_hotpath.json (see PERF.md).
perf-smoke:
	$(PYTHON) benchmarks/run_perf_smoke.py

# Seeded crash→restart scenario: WAL replay + state transfer must catch the
# node up, keep its log identical to the peers', and replay deterministically
# against tests/data/golden_trace_recovery.json (see repro.recovery_smoke).
recovery-smoke:
	$(PYTHON) -m repro.recovery_smoke

# Seeded equivocation scenario: correct nodes must stay prefix-identical,
# detect the attack, evict the adversary, and replay deterministically
# against tests/data/golden_trace_byzantine.json (see repro.byzantine_smoke).
byzantine-smoke:
	$(PYTHON) -m repro.byzantine_smoke

# Seeded malicious-client scenario: correct clients must complete, abusive
# submissions must be rejected+counted, nodes must stay prefix-identical,
# and the run must replay deterministically against
# tests/data/golden_trace_client_abuse.json (see repro.client_abuse_smoke).
# Writes BENCH_client_abuse.json.
client-abuse-smoke:
	$(PYTHON) -m repro.client_abuse_smoke

# Seeded partition scenario: minority node cut off behind a lossy link;
# clients must complete through retry/backoff, nodes must stay
# prefix-identical, the laggard must reconverge via state transfer at heal,
# and the run must replay deterministically against
# tests/data/golden_trace_partition.json (see repro.partition_smoke).
# Writes BENCH_partition_heal.json.
partition-smoke:
	$(PYTHON) -m repro.partition_smoke

# Seeded reconfiguration scenario: a replica added and another removed via
# ConfigTxs ordered in the log; both changes must activate at epoch
# boundaries, the joiner must catch up via state transfer, every client must
# complete, and the run must replay deterministically against
# tests/data/golden_trace_membership.json (see repro.membership_smoke).
membership-smoke:
	$(PYTHON) -m repro.membership_smoke

# Seeded random scenarios on both simulator engines: safety invariants must
# hold and the engines must stay bit-identical (see repro.fuzz_smoke).
fuzz-smoke:
	$(PYTHON) -m repro.fuzz_smoke

# Real 4-node localhost cluster (one OS process per replica, TCP, fsync'd
# storage) driven with KV traffic through one kill -9 + restart; every op
# must complete, the durable logs must agree, the victim must catch up, and
# the run's deterministic shape must match
# tests/data/golden_trace_live.json (see repro.live_smoke).
live-smoke:
	$(PYTHON) -m repro.live_smoke

# Profiling scenario untraced vs fully traced: tracing must not perturb the
# schedule, every completed request must close a valid span chain, the
# exporters must round-trip, and enabled-mode overhead must stay under 10%
# (see repro.obs_smoke).  Writes BENCH_obs_overhead.json.
obs-smoke:
	$(PYTHON) -m repro.obs_smoke

# Fig. 5 engine sweep at small node counts: single-queue vs sharded engine,
# both must agree on every counted figure.  Writes BENCH_fig5_smoke.json;
# drop --smoke (or set REPRO_FIG5_NODES) for the full sweep to
# BENCH_fig5.json (see benchmarks/bench_fig5_scalability.py).
fig5-smoke:
	$(PYTHON) benchmarks/bench_fig5_scalability.py --smoke

# Hot-path microbenchmarks (diagnose what perf-smoke flags).
bench:
	$(PYTHON) benchmarks/bench_hotpath.py
